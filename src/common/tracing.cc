#include "common/tracing.h"

#include <algorithm>
#include <utility>

#include "common/trace_names.h"
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <map>
#include <sstream>
#include <thread>

namespace xorbits {

namespace {

int64_t WallMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void AppendJsonEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

void AppendMetaEvent(std::string* out, int pid, int tid, const char* what,
                     const std::string& name, bool* first) {
  if (!*first) *out += ",\n";
  *first = false;
  *out += "  {\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
          ",\"tid\":" + std::to_string(tid) + ",\"name\":\"" + what +
          "\",\"args\":{\"name\":\"";
  AppendJsonEscaped(out, name);
  *out += "\"}}";
}

}  // namespace

const char* TraceStageName(TraceStage stage) {
  switch (stage) {
    case TraceStage::kKernelSerial: return "kernel_serial";
    case TraceStage::kKernelParallel: return "kernel_parallel";
    case TraceStage::kDispatch: return "dispatch";
    case TraceStage::kTransfer: return "transfer";
    case TraceStage::kStore: return "store";
    case TraceStage::kRecovery: return "recovery";
    case TraceStage::kSpill: return "spill";
    case TraceStage::kIdle: return "idle";
  }
  return "unknown";
}

int Tracer::RegisterProcess(const std::string& name, int num_bands) {
  int pid;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto p = std::make_unique<Process>();
    p->name = name;
    p->num_bands = num_bands;
    processes_.push_back(std::move(p));
    pid = static_cast<int>(processes_.size());  // pids are 1-based
  }
  return pid;
}

Tracer::Process* Tracer::process(int pid) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (pid < 1 || pid > static_cast<int>(processes_.size())) return nullptr;
  return processes_[pid - 1].get();
}

void Tracer::SetProcessMetrics(int pid, MetricsSnapshot snapshot) {
  Process* p = process(pid);
  if (p == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  p->metrics = std::move(snapshot);
}

int64_t Tracer::sim_now(int pid) const {
  Process* p = process(pid);
  return p == nullptr ? 0 : p->sim_now.load(std::memory_order_relaxed);
}

void Tracer::AdvanceSim(int pid, int64_t us) {
  Process* p = process(pid);
  if (p != nullptr) p->sim_now.fetch_add(us, std::memory_order_relaxed);
}

void Tracer::AddStage(int pid, TraceStage stage, int64_t us) {
  Process* p = process(pid);
  if (p != nullptr) {
    p->stages[static_cast<int>(stage)].fetch_add(us,
                                                 std::memory_order_relaxed);
  }
}

int64_t Tracer::stage_total(int pid, TraceStage stage) const {
  Process* p = process(pid);
  return p == nullptr
             ? 0
             : p->stages[static_cast<int>(stage)].load(
                   std::memory_order_relaxed);
}

Tracer::Shard& Tracer::ShardForThisThread() {
  const size_t h =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  return shards_[h % kNumShards];
}

void Tracer::Emit(TraceEvent event) {
  Shard& shard = ShardForThisThread();
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.events.push_back(std::move(event));
  }
  event_count_.fetch_add(1, std::memory_order_relaxed);
}

void Tracer::Instant(int pid, int tid, std::string name, TraceArgs args) {
  TraceEvent e;
  e.name = std::move(name);
  e.phase = TraceEvent::Phase::kInstant;
  e.pid = pid;
  e.tid = tid;
  e.ts_us = sim_now(pid);
  e.args = std::move(args);
  Emit(std::move(e));
}

void Tracer::CompleteAt(int pid, int tid, std::string name, int64_t ts_us,
                        int64_t dur_us, TraceArgs args, bool critical) {
  TraceEvent e;
  e.name = std::move(name);
  e.phase = TraceEvent::Phase::kComplete;
  e.pid = pid;
  e.tid = tid;
  e.ts_us = ts_us;
  e.dur_us = dur_us < 1 ? 1 : dur_us;
  e.critical = critical;
  e.args = std::move(args);
  Emit(std::move(e));
}

Tracer::Span Tracer::BeginSpan(int pid, int tid, std::string name,
                               TraceArgs args) {
  Span s;
  s.pid = pid;
  s.tid = tid;
  s.name = std::move(name);
  s.sim_start_us = sim_now(pid);
  s.wall_start_us = WallMicros();
  s.args = std::move(args);
  s.active = true;
  return s;
}

void Tracer::EndSpan(Span* span, TraceArgs extra) {
  if (span == nullptr || !span->active) return;
  span->active = false;
  TraceArgs args = std::move(span->args);
  for (auto& a : extra) args.push_back(std::move(a));
  args.push_back(Arg("wall_us", WallMicros() - span->wall_start_us));
  CompleteAt(span->pid, span->tid, std::move(span->name), span->sim_start_us,
             sim_now(span->pid) - span->sim_start_us, std::move(args));
}

std::vector<int> Tracer::process_ids() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<int> ids;
  for (size_t i = 0; i < processes_.size(); ++i) {
    ids.push_back(static_cast<int>(i) + 1);
  }
  return ids;
}

std::string Tracer::process_name(int pid) const {
  Process* p = process(pid);
  return p == nullptr ? std::string() : p->name;
}

std::vector<TraceEvent> Tracer::SnapshotEvents() const {
  std::vector<TraceEvent> out;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    out.insert(out.end(), shard.events.begin(), shard.events.end());
  }
  return out;
}

std::string Tracer::ToChromeJson() const {
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  // Track-naming metadata: one process entry per session, one thread entry
  // per track (supervisor/tiling/storage + one per band).
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < processes_.size(); ++i) {
      const int pid = static_cast<int>(i) + 1;
      const Process& p = *processes_[i];
      AppendMetaEvent(&out, pid, kTrackSupervisor, "process_name",
                      p.name + " (session " + std::to_string(pid) + ")",
                      &first);
      AppendMetaEvent(&out, pid, kTrackSupervisor, "thread_name",
                      "supervisor", &first);
      AppendMetaEvent(&out, pid, kTrackTiling, "thread_name", "tiling",
                      &first);
      AppendMetaEvent(&out, pid, kTrackStorage, "thread_name", "storage",
                      &first);
      for (int b = 0; b < p.num_bands; ++b) {
        AppendMetaEvent(&out, pid, kTrackBandBase + b, "thread_name",
                        "band " + std::to_string(b), &first);
      }
    }
  }
  for (const TraceEvent& e : SnapshotEvents()) {
    if (!first) out += ",\n";
    first = false;
    out += "  {\"ph\":\"";
    out += static_cast<char>(e.phase);
    out += "\",\"pid\":" + std::to_string(e.pid) +
           ",\"tid\":" + std::to_string(e.tid) +
           ",\"ts\":" + std::to_string(e.ts_us);
    if (e.phase == TraceEvent::Phase::kComplete) {
      out += ",\"dur\":" + std::to_string(e.dur_us);
    } else {
      out += ",\"s\":\"t\"";
    }
    out += ",\"name\":\"";
    AppendJsonEscaped(&out, e.name);
    out += "\",\"cat\":\"xorbits\",\"args\":{";
    bool first_arg = true;
    for (const TraceArg& a : e.args) {
      if (!first_arg) out += ",";
      first_arg = false;
      out += "\"";
      AppendJsonEscaped(&out, a.key);
      out += "\":";
      if (a.numeric) {
        out += a.value.empty() ? "0" : a.value;
      } else {
        out += "\"";
        AppendJsonEscaped(&out, a.value);
        out += "\"";
      }
    }
    if (e.critical) {
      if (!first_arg) out += ",";
      out += "\"critical\":1";
    }
    out += "}}";
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

Status Tracer::WriteChromeTrace(const std::string& path) const {
  std::ofstream f(path, std::ios::trunc);
  if (!f) return Status::IOError("cannot open trace file " + path);
  const std::string json = ToChromeJson();
  f.write(json.data(), static_cast<std::streamsize>(json.size()));
  if (!f) return Status::IOError("trace write failed: " + path);
  return Status::OK();
}

std::string Tracer::RenderRunReport(int pid) const {
  Process* p = process(pid);
  if (p == nullptr) return "no such traced process\n";
  const int64_t sim_total = p->sim_now.load(std::memory_order_relaxed);

  // Gather this process's events once.
  std::vector<TraceEvent> events;
  for (TraceEvent& e : SnapshotEvents()) {
    if (e.pid == pid) events.push_back(std::move(e));
  }

  std::ostringstream os;
  os << "=== run report: " << p->name << " (session " << pid << ") ===\n";
  os << "simulated total: " << sim_total << " us ("
     << static_cast<double>(sim_total) / 1e6 << " s)\n";

  // 1. Critical-path stage breakdown; the totals sum to sim_total exactly
  //    (kIdle absorbs critical-chain wait, kSpill the disk backpressure).
  os << "\n-- stage breakdown (critical path; sums to simulated total) --\n";
  int64_t stage_sum = 0;
  for (int s = 0; s < kTraceStageCount; ++s) {
    stage_sum += p->stages[s].load(std::memory_order_relaxed);
  }
  char line[160];
  for (int s = 0; s < kTraceStageCount; ++s) {
    const int64_t us = p->stages[s].load(std::memory_order_relaxed);
    const double pct =
        sim_total > 0 ? 100.0 * static_cast<double>(us) / sim_total : 0.0;
    std::snprintf(line, sizeof(line), "  %-16s %12lld us  %6.2f%%\n",
                  TraceStageName(static_cast<TraceStage>(s)),
                  static_cast<long long>(us), pct);
    os << line;
  }
  std::snprintf(line, sizeof(line), "  %-16s %12lld us  (simulated %lld)\n",
                "total", static_cast<long long>(stage_sum),
                static_cast<long long>(sim_total));
  os << line;

  // 2. Per-op modeled band time (all subtasks; bands overlap, so this sums
  //    to total band-busy time, not to the makespan).
  struct OpAgg {
    int64_t count = 0;
    int64_t busy_us = 0;
  };
  std::map<std::string, OpAgg> per_op;
  std::map<int, int64_t> band_busy;
  int64_t total_busy = 0;
  for (const TraceEvent& e : events) {
    if (e.phase != TraceEvent::Phase::kComplete ||
        e.tid < kTrackBandBase || e.name.rfind("subtask:", 0) != 0) {
      continue;
    }
    OpAgg& agg = per_op[e.name.substr(8)];
    agg.count++;
    agg.busy_us += e.dur_us;
    band_busy[e.tid - kTrackBandBase] += e.dur_us;
    total_busy += e.dur_us;
  }
  os << "\n-- per-op modeled band time --\n";
  std::vector<std::pair<std::string, OpAgg>> ops(per_op.begin(),
                                                 per_op.end());
  std::sort(ops.begin(), ops.end(), [](const auto& a, const auto& b) {
    return a.second.busy_us > b.second.busy_us;
  });
  for (const auto& [name, agg] : ops) {
    const double pct =
        total_busy > 0
            ? 100.0 * static_cast<double>(agg.busy_us) / total_busy
            : 0.0;
    std::snprintf(line, sizeof(line),
                  "  %-32s %6lld subtasks %12lld us  %6.2f%%\n",
                  name.c_str(), static_cast<long long>(agg.count),
                  static_cast<long long>(agg.busy_us), pct);
    os << line;
  }

  // 3. Per-band busy/idle/spill + peak memory watermarks.
  std::map<int, int64_t> band_spill, band_peak;
  if (p->metrics.has_value()) {
    for (const auto& [name, value] : p->metrics->gauges) {
      auto tail_of = [&name](const char* prefix) -> int {
        const std::string pre(prefix);
        if (name.rfind(pre, 0) != 0) return -1;
        return std::atoi(name.c_str() + pre.size());
      };
      int b = tail_of("band_spill_bytes/");
      if (b >= 0) band_spill[b] = value;
      b = tail_of("band_peak_bytes/");
      if (b >= 0) band_peak[b] = value;
    }
  }
  os << "\n-- per-band utilization (of " << sim_total
     << " us simulated) --\n";
  for (int b = 0; b < p->num_bands; ++b) {
    const int64_t busy = band_busy.count(b) ? band_busy[b] : 0;
    const int64_t idle = sim_total > busy ? sim_total - busy : 0;
    const double busy_pct =
        sim_total > 0 ? 100.0 * static_cast<double>(busy) / sim_total : 0.0;
    std::snprintf(
        line, sizeof(line),
        "  band %-3d busy %12lld us (%5.1f%%)  idle %12lld us  "
        "spilled %10lld B  peak %10lld B\n",
        b, static_cast<long long>(busy), busy_pct,
        static_cast<long long>(idle),
        static_cast<long long>(band_spill.count(b) ? band_spill[b] : 0),
        static_cast<long long>(band_peak.count(b) ? band_peak[b] : 0));
    os << line;
  }

  // 4. Critical path, longest segments first.
  std::vector<const TraceEvent*> crit;
  for (const TraceEvent& e : events) {
    if (e.critical) crit.push_back(&e);
  }
  std::sort(crit.begin(), crit.end(),
            [](const TraceEvent* a, const TraceEvent* b) {
              return a->ts_us < b->ts_us;
            });
  os << "\n-- critical path (" << crit.size() << " segments) --\n";
  const size_t max_rows = 20;
  for (size_t i = 0; i < crit.size() && i < max_rows; ++i) {
    const TraceEvent& e = *crit[i];
    std::snprintf(line, sizeof(line),
                  "  ts %12lld us  dur %12lld us  band %-3d %s\n",
                  static_cast<long long>(e.ts_us),
                  static_cast<long long>(e.dur_us), e.tid - kTrackBandBase,
                  e.name.c_str());
    os << line;
  }
  if (crit.size() > max_rows) {
    os << "  ... " << crit.size() - max_rows << " more\n";
  }

  // 5. Optimizer pipeline: one row per configured pass, in pipeline order
  //    (tileable, then chunk, then subtask level), from the pass gauges.
  if (p->metrics.has_value()) {
    struct PassRow {
      int64_t runs = 0;
      int64_t us = 0;
      int64_t removed = 0;
      int64_t rewritten = 0;
    };
    // Keyed by slot ("t0_predicate_pushdown"); slots sort by level rank
    // then pipeline index.
    std::map<std::pair<int, std::string>, PassRow> passes;
    auto slot_key =
        [](const std::string& slot) -> std::pair<int, std::string> {
      int rank = 3;
      if (!slot.empty()) {
        if (slot[0] == 't') rank = 0;
        if (slot[0] == 'c') rank = 1;
        if (slot[0] == 's') rank = 2;
      }
      return {rank, slot};
    };
    for (const auto& [name, value] : p->metrics->gauges) {
      auto slot_of = [&name](const char* prefix) -> std::string {
        const std::string pre(prefix);
        if (name.rfind(pre, 0) != 0) return "";
        return name.substr(pre.size());
      };
      std::string s = slot_of(trace::kGaugePassRunsPrefix);
      if (!s.empty()) passes[slot_key(s)].runs = value;
      s = slot_of(trace::kGaugePassUsPrefix);
      if (!s.empty()) passes[slot_key(s)].us = value;
      s = slot_of(trace::kGaugePassRemovedPrefix);
      if (!s.empty()) passes[slot_key(s)].removed = value;
      s = slot_of(trace::kGaugePassRewrittenPrefix);
      if (!s.empty()) passes[slot_key(s)].rewritten = value;
    }
    if (!passes.empty()) {
      os << "\n-- optimizer passes (pipeline order) --\n";
      for (const auto& [key, row] : passes) {
        std::snprintf(line, sizeof(line),
                      "  %-28s runs %5lld  %10lld us  removed %6lld  "
                      "rewritten %6lld\n",
                      key.second.c_str(), static_cast<long long>(row.runs),
                      static_cast<long long>(row.us),
                      static_cast<long long>(row.removed),
                      static_cast<long long>(row.rewritten));
        os << line;
      }
    }
  }

  // 6. Multi-tenant serving (rendered for the cluster process, which owns
  //    the admission gauges): live/shed sessions, admission queue wait,
  //    and per-session in-memory bytes the quota is enforced against.
  if (p->metrics.has_value()) {
    bool have_sessions = false;
    int64_t active = 0, shed = 0;
    std::map<int64_t, int64_t> session_bytes;
    const std::string bytes_prefix(trace::kGaugeSessionBytesPrefix);
    for (const auto& [name, value] : p->metrics->gauges) {
      if (name == trace::kGaugeSessionsActive) {
        active = value;
        have_sessions = true;
      } else if (name == trace::kGaugeSessionsShed) {
        shed = value;
        have_sessions = true;
      } else if (name.rfind(bytes_prefix, 0) == 0) {
        session_bytes[std::atoll(name.c_str() + bytes_prefix.size())] = value;
        have_sessions = true;
      }
    }
    const HistogramSnapshot* wait = nullptr;
    for (const HistogramSnapshot& h : p->metrics->histograms) {
      if (h.name == trace::kHistSessionQueueWaitUs && h.count > 0) wait = &h;
    }
    if (have_sessions || wait != nullptr) {
      os << "\n-- sessions (multi-tenant serving) --\n";
      std::snprintf(line, sizeof(line),
                    "  active %lld  shed %lld\n",
                    static_cast<long long>(active),
                    static_cast<long long>(shed));
      os << line;
      if (wait != nullptr) {
        const double mean = static_cast<double>(wait->sum) / wait->count;
        std::snprintf(line, sizeof(line),
                      "  admission wait: count=%lld mean=%.1f us max=%lld us\n",
                      static_cast<long long>(wait->count), mean,
                      static_cast<long long>(wait->max));
        os << line;
      }
      for (const auto& [sid, bytes] : session_bytes) {
        std::snprintf(line, sizeof(line),
                      "  session %-4lld in-memory %12lld B\n",
                      static_cast<long long>(sid),
                      static_cast<long long>(bytes));
        os << line;
      }
    }
  }

  // 7. Result cache (DESIGN.md §9), rendered for the process that owns the
  //    cache's metrics (the cluster under a SessionManager, the session in
  //    solo mode): hit rate, publish/evict/invalidate churn, and the cached
  //    footprint the cluster budget is enforced against.
  if (p->metrics.has_value()) {
    int64_t hits = 0, misses = 0, publishes = 0, evictions = 0,
            invalidations = 0;
    bool have_cache = false;
    for (const auto& [name, value] : p->metrics->counters) {
      if (name == "cache_hits") hits = value;
      else if (name == "cache_misses") misses = value;
      else if (name == "cache_publishes") publishes = value;
      else if (name == "cache_evictions") evictions = value;
      else if (name == "cache_invalidations") invalidations = value;
      else continue;
      have_cache = have_cache || value != 0;
    }
    int64_t cache_bytes = 0, cache_entries = 0;
    for (const auto& [name, value] : p->metrics->gauges) {
      if (name == trace::kGaugeCacheBytes) {
        cache_bytes = value;
        have_cache = have_cache || value != 0;
      } else if (name == trace::kGaugeCacheEntries) {
        cache_entries = value;
        have_cache = have_cache || value != 0;
      }
    }
    if (have_cache) {
      const int64_t probes = hits + misses;
      const double hit_rate =
          probes > 0 ? static_cast<double>(hits) / probes : 0.0;
      os << "\n-- result cache (cross-session) --\n";
      std::snprintf(line, sizeof(line),
                    "  hits %lld  misses %lld  hit_rate %.3f\n",
                    static_cast<long long>(hits),
                    static_cast<long long>(misses), hit_rate);
      os << line;
      std::snprintf(line, sizeof(line),
                    "  publishes %lld  evictions %lld  invalidations %lld\n",
                    static_cast<long long>(publishes),
                    static_cast<long long>(evictions),
                    static_cast<long long>(invalidations));
      os << line;
      std::snprintf(line, sizeof(line),
                    "  cached %lld B in %lld entries\n",
                    static_cast<long long>(cache_bytes),
                    static_cast<long long>(cache_entries));
      os << line;
    }
  }

  // 8. Counters + histograms from the attached metrics snapshot.
  if (p->metrics.has_value()) {
    os << "\n-- counters (non-zero) --\n";
    for (const auto& [name, value] : p->metrics->counters) {
      if (value != 0) os << "  " << name << " = " << value << "\n";
    }
    os << "\n-- histograms --\n";
    for (const HistogramSnapshot& h : p->metrics->histograms) {
      const double mean =
          h.count > 0 ? static_cast<double>(h.sum) / h.count : 0.0;
      std::snprintf(line, sizeof(line),
                    "  %s (%s): count=%lld mean=%.1f min=%lld max=%lld\n",
                    h.name.c_str(), h.unit.c_str(),
                    static_cast<long long>(h.count), mean,
                    static_cast<long long>(h.min),
                    static_cast<long long>(h.max));
      os << line;
      for (size_t i = 0; i < h.counts.size(); ++i) {
        if (h.counts[i] == 0) continue;
        if (i < h.bounds.size()) {
          std::snprintf(line, sizeof(line), "    <= %-12lld %lld\n",
                        static_cast<long long>(h.bounds[i]),
                        static_cast<long long>(h.counts[i]));
        } else {
          std::snprintf(line, sizeof(line), "    >  %-12lld %lld\n",
                        static_cast<long long>(h.bounds.back()),
                        static_cast<long long>(h.counts[i]));
        }
        os << line;
      }
    }
  }
  os << "\n";
  return os.str();
}

std::string Tracer::RenderAllReports() const {
  std::string out;
  for (int pid : process_ids()) out += RenderRunReport(pid);
  return out;
}

}  // namespace xorbits
