#ifndef XORBITS_COMMON_STATUS_H_
#define XORBITS_COMMON_STATUS_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>

namespace xorbits {

/// Error categories used across the engine. The scheduler and the failure
/// benches classify run outcomes by these codes (e.g. Table II of the paper
/// groups failures into API-compatibility, hang and OOM buckets).
enum class StatusCode {
  kOk = 0,
  kInvalid,          // malformed arguments or inconsistent state
  kKeyError,         // missing column / storage key / meta entry
  kTypeError,        // dtype mismatch
  kIndexError,       // out-of-bounds positional access
  kNotImplemented,   // API exists but unsupported by this engine config
  kOutOfMemory,      // a band exceeded its memory budget
  kIOError,          // file / (simulated) network failure
  kTimeout,          // scheduler deadline exceeded ("hang")
  kExecutionError,   // a subtask failed during execution
  kCancelled,
  kWorkerLost,       // a band died; its subtasks must run elsewhere
  kChunkLost,        // stored chunk gone; recoverable via lineage recompute
  kOverloaded,       // admission shed under load; retry after the hint
  kQuotaExceeded,    // session memory quota exhausted; fatal for the session
};

/// Returns a stable human-readable name for a status code.
const char* StatusCodeName(StatusCode code);

/// Arrow-style status object. Functions that can fail return `Status` (or
/// `Result<T>`); exceptions never cross library boundaries.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status Invalid(std::string msg) {
    return Status(StatusCode::kInvalid, std::move(msg));
  }
  static Status KeyError(std::string msg) {
    return Status(StatusCode::kKeyError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status IndexError(std::string msg) {
    return Status(StatusCode::kIndexError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status OutOfMemory(std::string msg) {
    return Status(StatusCode::kOutOfMemory, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status ExecutionError(std::string msg) {
    return Status(StatusCode::kExecutionError, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status WorkerLost(std::string msg) {
    return Status(StatusCode::kWorkerLost, std::move(msg));
  }
  static Status ChunkLost(std::string msg) {
    return Status(StatusCode::kChunkLost, std::move(msg));
  }
  /// Load-shedding refusal from the admission controller. `backoff_hint_ms`
  /// is the server's estimate of when capacity frees up; well-behaved
  /// clients wait at least that long before retrying (the executor's
  /// capped-backoff retry path honours it too).
  static Status Overloaded(std::string msg, int64_t backoff_hint_ms = 0) {
    Status s(StatusCode::kOverloaded, std::move(msg));
    s.backoff_hint_ms_ = backoff_hint_ms;
    return s;
  }
  static Status QuotaExceeded(std::string msg) {
    return Status(StatusCode::kQuotaExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  bool IsOutOfMemory() const { return code_ == StatusCode::kOutOfMemory; }
  bool IsTimeout() const { return code_ == StatusCode::kTimeout; }
  bool IsNotImplemented() const { return code_ == StatusCode::kNotImplemented; }
  bool IsWorkerLost() const { return code_ == StatusCode::kWorkerLost; }
  bool IsChunkLost() const { return code_ == StatusCode::kChunkLost; }
  bool IsOverloaded() const { return code_ == StatusCode::kOverloaded; }
  bool IsQuotaExceeded() const {
    return code_ == StatusCode::kQuotaExceeded;
  }

  /// Server-supplied retry delay for kOverloaded (0 = none supplied).
  int64_t backoff_hint_ms() const { return backoff_hint_ms_; }

  /// Failure taxonomy used by the executor's retry policy. Retryable errors
  /// are transient by nature (an I/O flake, a band that died mid-subtask, a
  /// straggler past its per-subtask timeout) and may succeed on a clean
  /// re-execution; everything else — kernel bugs, type errors, deterministic
  /// OOM — fails identically on every attempt and must fail fast. kChunkLost
  /// is deliberately NOT retryable: plain re-execution cannot conjure the
  /// missing input, it needs the lineage-recovery path first. kOverloaded is
  /// retryable (load passes); kQuotaExceeded is not — the session would hit
  /// the same quota on every attempt and must fail (alone), not loop.
  bool IsRetryable() const {
    return code_ == StatusCode::kIOError ||
           code_ == StatusCode::kWorkerLost ||
           code_ == StatusCode::kTimeout ||
           code_ == StatusCode::kOverloaded;
  }

  std::string ToString() const {
    if (ok()) return "OK";
    std::string s = StatusCodeName(code_);
    if (!msg_.empty()) {
      s += ": ";
      s += msg_;
    }
    return s;
  }

  /// Adds context to a non-OK status message (no-op on OK). Preserves the
  /// backoff hint so re-wrapped overload errors keep their retry advice.
  Status WithContext(const std::string& context) const {
    if (ok()) return *this;
    Status s(code_, context + ": " + msg_);
    s.backoff_hint_ms_ = backoff_hint_ms_;
    return s;
  }

 private:
  StatusCode code_;
  std::string msg_;
  int64_t backoff_hint_ms_ = 0;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates a non-OK status to the caller.
#define XORBITS_RETURN_NOT_OK(expr)              \
  do {                                           \
    ::xorbits::Status _st = (expr);              \
    if (!_st.ok()) return _st;                   \
  } while (0)

#define XORBITS_CONCAT_IMPL(a, b) a##b
#define XORBITS_CONCAT(a, b) XORBITS_CONCAT_IMPL(a, b)

}  // namespace xorbits

#endif  // XORBITS_COMMON_STATUS_H_
