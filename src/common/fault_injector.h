#ifndef XORBITS_COMMON_FAULT_INJECTOR_H_
#define XORBITS_COMMON_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "common/config.h"
#include "common/status.h"

namespace xorbits {

/// Deterministic chaos source for the simulated cluster. Three fault
/// classes, all configured through `Config` so a chaos run is exactly
/// reproducible from its seed:
///
///  - transient subtask faults: each (subtask, attempt) pair hashes, with
///    the seed, to a uniform draw against `fault_transient_prob`. Hashing
///    instead of a shared RNG stream makes the decision independent of
///    thread interleaving — attempt 0 of subtask 17 either always fails or
///    never does, no matter which band ran first.
///  - band kills: "after the cluster has completed N subtasks, band B
///    dies" schedules, consumed in order by the executor's completion
///    counter.
///  - chunk losses: "after N completed subtasks, one persisted chunk
///    vanishes" events; the victim is chosen deterministically by the
///    executor (lexicographically smallest lineage-tracked key).
///
/// A default-constructed injector (or one built from a Config with no
/// fault fields set) is inert and costs one branch per hook.
class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(const Config& config);

  /// True when any fault class is configured.
  bool enabled() const { return enabled_; }

  /// Decides whether attempt `attempt` of the subtask identified by `uid`
  /// suffers an injected transient fault. Returns OK or a retryable
  /// kIOError. `uid` must be stable across identical runs (the executor
  /// uses run-sequence * 2^20 + subtask id).
  Status MaybeInjectSubtaskFault(int64_t uid, int attempt);

  /// Bands whose scheduled kill step is <= `completed_subtasks`, each
  /// returned exactly once across all calls.
  std::vector<int> TakeDueBandKills(int64_t completed_subtasks);

  /// Number of chunk-loss events whose step is <= `completed_subtasks`,
  /// each counted exactly once across all calls.
  int TakeDueChunkLosses(int64_t completed_subtasks);

  /// Transient faults injected so far (for tests and benches).
  int64_t faults_injected() const { return faults_injected_.load(); }

 private:
  bool enabled_ = false;
  uint64_t seed_ = 0;
  double transient_prob_ = 0.0;
  std::atomic<int64_t> faults_injected_{0};

  std::mutex mu_;  // guards the schedule cursors
  std::vector<std::pair<int64_t, int>> band_kills_;  // sorted by step
  size_t next_band_kill_ = 0;
  std::vector<int64_t> chunk_losses_;  // sorted
  size_t next_chunk_loss_ = 0;
};

}  // namespace xorbits

#endif  // XORBITS_COMMON_FAULT_INJECTOR_H_
