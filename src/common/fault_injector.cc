#include "common/fault_injector.h"

#include <algorithm>
#include <string>

namespace xorbits {

namespace {

/// splitmix64: cheap, well-mixed 64-bit hash; the standard choice for
/// turning (seed, counter) pairs into independent uniform draws.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

FaultInjector::FaultInjector(const Config& config)
    : seed_(config.fault_seed),
      transient_prob_(config.fault_transient_prob),
      band_kills_(config.fault_band_kills),
      chunk_losses_(config.fault_chunk_losses) {
  std::sort(band_kills_.begin(), band_kills_.end());
  std::sort(chunk_losses_.begin(), chunk_losses_.end());
  enabled_ = transient_prob_ > 0.0 || !band_kills_.empty() ||
             !chunk_losses_.empty();
}

Status FaultInjector::MaybeInjectSubtaskFault(int64_t uid, int attempt) {
  if (transient_prob_ <= 0.0) return Status::OK();
  const uint64_t h = Mix64(seed_ ^ Mix64(static_cast<uint64_t>(uid)) ^
                           (static_cast<uint64_t>(attempt) << 48));
  // Top 53 bits -> uniform double in [0, 1).
  const double draw =
      static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
  if (draw >= transient_prob_) return Status::OK();
  faults_injected_++;
  return Status::IOError("injected transient fault (subtask uid " +
                         std::to_string(uid) + ", attempt " +
                         std::to_string(attempt) + ")");
}

std::vector<int> FaultInjector::TakeDueBandKills(int64_t completed_subtasks) {
  if (band_kills_.empty()) return {};
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<int> due;
  while (next_band_kill_ < band_kills_.size() &&
         band_kills_[next_band_kill_].first <= completed_subtasks) {
    due.push_back(band_kills_[next_band_kill_].second);
    ++next_band_kill_;
  }
  return due;
}

int FaultInjector::TakeDueChunkLosses(int64_t completed_subtasks) {
  if (chunk_losses_.empty()) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  int due = 0;
  while (next_chunk_loss_ < chunk_losses_.size() &&
         chunk_losses_[next_chunk_loss_] <= completed_subtasks) {
    ++due;
    ++next_chunk_loss_;
  }
  return due;
}

}  // namespace xorbits
