#include "common/metrics.h"

#include <sstream>

namespace xorbits {

std::string Metrics::ToString() const {
  std::ostringstream os;
  os << "subtasks=" << subtasks_executed.load()
     << " failed=" << subtasks_failed.load()
     << " retried=" << subtasks_retried.load()
     << " recovered_chunks=" << chunks_recovered.load()
     << " bands_lost=" << bands_blacklisted.load()
     << " stored_bytes=" << bytes_stored.load()
     << " transfer_bytes=" << bytes_transferred.load()
     << " spill_bytes=" << bytes_spilled.load()
     << " oom=" << oom_events.load()
     << " peak_band_bytes=" << peak_band_bytes.load()
     << " yields=" << dynamic_yields.load()
     << " kernel_cpu_us=" << kernel_cpu_us.load()
     << " fused_subtasks=" << fused_subtasks.load();
  return os.str();
}

}  // namespace xorbits
