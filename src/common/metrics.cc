#include "common/metrics.h"

#include <algorithm>
#include <sstream>

#include "common/buffer.h"
#include "common/exchange_stats.h"
#include "common/kernel_stats.h"
#include "common/late_stats.h"
#include "common/trace_names.h"

namespace xorbits {

Histogram::Histogram(std::string name, std::string unit,
                     std::vector<int64_t> bounds)
    : name_(std::move(name)),
      unit_(std::move(unit)),
      bounds_(std::move(bounds)),
      counts_(new std::atomic<int64_t>[bounds_.size() + 1]) {
  for (size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0);
}

void Histogram::Observe(int64_t value) {
  // First bucket whose upper bound covers the value; above-all -> overflow.
  size_t idx = bounds_.size();
  for (size_t i = 0; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) {
      idx = i;
      break;
    }
  }
  counts_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  int64_t prev = min_.load(std::memory_order_relaxed);
  while (value < prev && !min_.compare_exchange_weak(prev, value)) {
  }
  prev = max_.load(std::memory_order_relaxed);
  while (value > prev && !max_.compare_exchange_weak(prev, value)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot s;
  s.name = name_;
  s.unit = unit_;
  s.bounds = bounds_;
  s.counts.resize(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    s.counts[i] = counts_[i].load(std::memory_order_relaxed);
  }
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  s.min = s.count > 0 ? min_.load(std::memory_order_relaxed) : 0;
  s.max = s.count > 0 ? max_.load(std::memory_order_relaxed) : 0;
  return s;
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0);
  count_.store(0);
  sum_.store(0);
  min_.store(std::numeric_limits<int64_t>::max());
  max_.store(std::numeric_limits<int64_t>::min());
}

std::vector<int64_t> DefaultBuckets() {
  std::vector<int64_t> bounds;
  int64_t b = 16;
  for (int i = 0; i < 12; ++i) {
    bounds.push_back(b);
    b *= 4;
  }
  return bounds;
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& unit) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::make_unique<Gauge>(name, unit)).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& unit,
                                         std::vector<int64_t> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(name, std::make_unique<Histogram>(name, unit,
                                                        std::move(bounds)))
             .first;
  }
  return it->second.get();
}

std::vector<std::pair<std::string, int64_t>>
MetricsRegistry::SnapshotGaugesLocked() const {
  std::vector<std::pair<std::string, int64_t>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g->value());
  return out;
}

std::vector<HistogramSnapshot> MetricsRegistry::SnapshotHistogramsLocked()
    const {
  std::vector<HistogramSnapshot> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) out.push_back(h->Snapshot());
  return out;
}

std::vector<std::pair<std::string, int64_t>> MetricsRegistry::SnapshotGauges()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return SnapshotGaugesLocked();
}

std::vector<HistogramSnapshot> MetricsRegistry::SnapshotHistograms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return SnapshotHistogramsLocked();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, g] : gauges_) g->Set(0);
  for (auto& [name, h] : histograms_) h->Reset();
}

int64_t MetricsSnapshot::Counter(const std::string& name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

Metrics::Metrics()
    : subtask_latency_us(registry.GetHistogram(trace::kHistSubtaskLatencyUs,
                                               "us", DefaultBuckets())),
      chunk_bytes(registry.GetHistogram(trace::kHistChunkBytes, "bytes",
                                        DefaultBuckets())),
      queue_wait_us(registry.GetHistogram(trace::kHistQueueWaitUs, "us",
                                          DefaultBuckets())) {}

void Metrics::Reset() {
  subtasks_executed = 0;
  subtasks_failed = 0;
  subtasks_retried = 0;
  chunks_recovered = 0;
  bands_blacklisted = 0;
  faults_injected = 0;
  recovery_us = 0;
  chunks_stored = 0;
  bytes_stored = 0;
  bytes_transferred = 0;
  bytes_spilled = 0;
  spill_events = 0;
  oom_events = 0;
  peak_band_bytes = 0;
  dynamic_yields = 0;
  simulated_us = 0;
  kernel_cpu_us = 0;
  fused_subtasks = 0;
  op_fusion_hits = 0;
  pruned_columns = 0;
  predicates_pushed = 0;
  cse_hits = 0;
  dead_nodes_eliminated = 0;
  late_rewrites = 0;
  source_bytes_read = 0;
  cache_hits = 0;
  cache_misses = 0;
  cache_publishes = 0;
  cache_evictions = 0;
  cache_invalidations = 0;
  registry.Reset();
}

MetricsSnapshot Metrics::Snapshot() const {
  // The registry lock makes the snapshot consistent with registration and
  // with other snapshotters; individual values are atomics.
  std::lock_guard<std::mutex> lock(registry.mutex());
  MetricsSnapshot s;
  s.counters = {
      {"subtasks_executed", subtasks_executed.load()},
      {"subtasks_failed", subtasks_failed.load()},
      {"subtasks_retried", subtasks_retried.load()},
      {"chunks_recovered", chunks_recovered.load()},
      {"bands_blacklisted", bands_blacklisted.load()},
      {"faults_injected", faults_injected.load()},
      {"recovery_us", recovery_us.load()},
      {"chunks_stored", chunks_stored.load()},
      {"bytes_stored", bytes_stored.load()},
      {"bytes_transferred", bytes_transferred.load()},
      {"bytes_spilled", bytes_spilled.load()},
      {"spill_events", spill_events.load()},
      {"oom_events", oom_events.load()},
      {"peak_band_bytes", peak_band_bytes.load()},
      {"dynamic_yields", dynamic_yields.load()},
      {"simulated_us", simulated_us.load()},
      {"kernel_cpu_us", kernel_cpu_us.load()},
      {"fused_subtasks", fused_subtasks.load()},
      {"op_fusion_hits", op_fusion_hits.load()},
      {"pruned_columns", pruned_columns.load()},
      {"predicates_pushed", predicates_pushed.load()},
      {"cse_hits", cse_hits.load()},
      {"dead_nodes_eliminated", dead_nodes_eliminated.load()},
      {"late_rewrites", late_rewrites.load()},
      {"source_bytes_read", source_bytes_read.load()},
      {"cache_hits", cache_hits.load()},
      {"cache_misses", cache_misses.load()},
      {"cache_publishes", cache_publishes.load()},
      {"cache_evictions", cache_evictions.load()},
      {"cache_invalidations", cache_invalidations.load()},
  };
  s.gauges = registry.SnapshotGaugesLocked();
  // The copy-on-write buffer layer sits below the session, so its counters
  // are process-global; surface them as gauges so run reports and tests see
  // sharing behaviour next to the band gauges.
  const auto& bs = common::BufferStats::Get();
  s.gauges.emplace_back(trace::kGaugeBufferBytesShared,
                        bs.bytes_shared.load(std::memory_order_relaxed));
  s.gauges.emplace_back(trace::kGaugeChunkCopiesAvoided,
                        bs.copies_avoided.load(std::memory_order_relaxed));
  s.gauges.emplace_back(trace::kGaugeBufferCowCopies,
                        bs.cow_copies.load(std::memory_order_relaxed));
  // Same arrangement for the dictionary/radix kernel counters: global
  // because the kernels run below the session, surfaced here as gauges.
  const auto& ks = common::KernelStats::Get();
  s.gauges.emplace_back(
      trace::kGaugeDictEncodedColumns,
      ks.dict_encoded_columns.load(std::memory_order_relaxed));
  s.gauges.emplace_back(
      trace::kGaugeDictFallbackDecodes,
      ks.dict_fallback_decodes.load(std::memory_order_relaxed));
  s.gauges.emplace_back(
      trace::kGaugeJoinRadixPartitions,
      ks.join_radix_partitions.load(std::memory_order_relaxed));
  // Late-materialization counters (DESIGN.md §10), also process-global:
  // lazy frames outlive any one run, so their resolution costs cannot be
  // attributed to a per-run Metrics instance.
  const auto& ls = common::LateStats::Get();
  s.gauges.emplace_back(
      trace::kGaugeBytesMaterialized,
      ls.bytes_materialized.load(std::memory_order_relaxed));
  s.gauges.emplace_back(
      trace::kGaugeSelectionsForced,
      ls.selections_forced.load(std::memory_order_relaxed));
  s.gauges.emplace_back(
      trace::kGaugeLazyColumnsDecoded,
      ls.lazy_columns_decoded.load(std::memory_order_relaxed));
  s.gauges.emplace_back(
      trace::kGaugeDeferredTransforms,
      ls.deferred_transforms.load(std::memory_order_relaxed));
  // Pipelined-exchange counters (DESIGN.md §11), also process-global:
  // blocks are produced in operator kernels and consumed by the executor,
  // neither of which holds a per-run Metrics instance at push time.
  const auto& xs = common::ExchangeStats::Get();
  s.gauges.emplace_back(
      trace::kGaugeShuffleWireBytes,
      xs.shuffle_wire_bytes.load(std::memory_order_relaxed));
  s.gauges.emplace_back(
      trace::kGaugeShuffleMemoryBytes,
      xs.shuffle_memory_bytes.load(std::memory_order_relaxed));
  s.gauges.emplace_back(
      trace::kGaugeShuffleBlocksProduced,
      xs.shuffle_blocks_produced.load(std::memory_order_relaxed));
  s.gauges.emplace_back(
      trace::kGaugeShuffleBlocksConsumed,
      xs.shuffle_blocks_consumed.load(std::memory_order_relaxed));
  s.gauges.emplace_back(
      trace::kGaugeShuffleBlocksSpilled,
      xs.shuffle_blocks_spilled.load(std::memory_order_relaxed));
  s.gauges.emplace_back(
      trace::kGaugeShuffleBlocksRecovered,
      xs.shuffle_blocks_recovered.load(std::memory_order_relaxed));
  s.gauges.emplace_back(
      trace::kGaugeExchangeBackpressureUs,
      xs.exchange_backpressure_us.load(std::memory_order_relaxed));
  std::sort(s.gauges.begin(), s.gauges.end());
  s.histograms = registry.SnapshotHistogramsLocked();
  return s;
}

std::string Metrics::ToString() const {
  std::ostringstream os;
  os << "subtasks=" << subtasks_executed.load()
     << " failed=" << subtasks_failed.load()
     << " retried=" << subtasks_retried.load()
     << " recovered_chunks=" << chunks_recovered.load()
     << " bands_lost=" << bands_blacklisted.load()
     << " stored_bytes=" << bytes_stored.load()
     << " transfer_bytes=" << bytes_transferred.load()
     << " spill_bytes=" << bytes_spilled.load()
     << " oom=" << oom_events.load()
     << " peak_band_bytes=" << peak_band_bytes.load()
     << " yields=" << dynamic_yields.load()
     << " kernel_cpu_us=" << kernel_cpu_us.load()
     << " fused_subtasks=" << fused_subtasks.load()
     << " buffer_bytes_shared="
     << common::BufferStats::Get().bytes_shared.load()
     << " chunk_copies_avoided="
     << common::BufferStats::Get().copies_avoided.load();
  return os.str();
}

}  // namespace xorbits
