#ifndef XORBITS_COMMON_BUFFER_H_
#define XORBITS_COMMON_BUFFER_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace xorbits::common {

/// Fixed per-item byte widths, the single source of truth for dtype sizes.
/// `dataframe::DTypeItemSize` and `tensor::NDArray::nbytes` both route
/// through these so memory accounting cannot drift between layers. Strings
/// store a measured payload; kItemSizeString is the per-item bookkeeping
/// overhead added on top (pointer + length).
inline constexpr int64_t kItemSizeInt64 = 8;
inline constexpr int64_t kItemSizeFloat64 = 8;
inline constexpr int64_t kItemSizeString = 16;
inline constexpr int64_t kItemSizeBool = 1;

/// Process-global counters for the copy-on-write buffer layer. They are
/// deliberately global (the buffer layer sits below Metrics/Session);
/// `Metrics::Snapshot` surfaces them as gauges. All updates are relaxed
/// atomics — exact cross-thread ordering is irrelevant for monotone totals.
struct BufferStats {
  /// Payload bytes that were aliased instead of copied (cumulative, counted
  /// at each zero-copy slice/concat/take; strings are counted at their
  /// container width, the O(1) path never walks the heap).
  std::atomic<int64_t> bytes_shared{0};
  /// Zero-copy share events (slices, adjacent concats, contiguous takes)
  /// that a plain-vector payload would have materialized.
  std::atomic<int64_t> copies_avoided{0};
  /// Private copies forced by a mutation of a shared (or sliced) buffer.
  std::atomic<int64_t> cow_copies{0};

  static BufferStats& Get();
  void Reset() {
    bytes_shared.store(0, std::memory_order_relaxed);
    copies_avoided.store(0, std::memory_order_relaxed);
    cow_copies.store(0, std::memory_order_relaxed);
  }
};

/// One underlying buffer referenced by a view, for unique-byte accounting:
/// storage charges `buffer_bytes` once per distinct `id` per band, while
/// logical sizes (transfer, serialization) sum `view_bytes` once per
/// distinct (id, offset, length) window.
struct BufferRef {
  uint64_t id = 0;
  int64_t buffer_bytes = 0;  // whole underlying allocation (measured)
  int64_t view_bytes = 0;    // just the window this view exposes
  int64_t offset = 0;
  int64_t length = 0;
};

namespace buffer_detail {

uint64_t NextBufferId();

template <typename T>
inline int64_t PayloadBytes(const T* /*data*/, int64_t n) {
  return n * static_cast<int64_t>(sizeof(T));
}
inline int64_t PayloadBytes(const std::string* data, int64_t n) {
  int64_t bytes = 0;
  for (int64_t i = 0; i < n; ++i) {
    bytes += static_cast<int64_t>(data[i].size()) + kItemSizeString;
  }
  return bytes;
}

/// Refcounted immutable storage cell. The vector is only ever written
/// through BufferView::MutableVec, which guarantees single ownership first.
template <typename T>
struct Buffer {
  explicit Buffer(std::vector<T> v)
      : vec(std::move(v)), id(NextBufferId()) {}
  std::vector<T> vec;
  const uint64_t id;
};

}  // namespace buffer_detail

/// A typed window (offset/length) over a shared refcounted buffer — the
/// payload cell behind dataframe::Column and tensor::NDArray. Copying a
/// view shares the buffer; `Slice` is O(1); the first mutation of a shared
/// or partial view (`MutableVec`) makes a private full copy of the window
/// (copy-on-write). The interface mirrors `const std::vector<T>` so kernel
/// code reads through it unchanged.
template <typename T>
class BufferView {
 public:
  using value_type = T;

  BufferView() = default;
  explicit BufferView(std::vector<T> values)
      : buf_(std::make_shared<buffer_detail::Buffer<T>>(std::move(values))) {}

  // --- const, vector-shaped access ---
  size_t size() const {
    if (!buf_) return 0;
    return length_ < 0 ? buf_->vec.size() : static_cast<size_t>(length_);
  }
  int64_t ssize() const { return static_cast<int64_t>(size()); }
  bool empty() const { return size() == 0; }
  const T* data() const { return buf_ ? buf_->vec.data() + offset_ : nullptr; }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size(); }
  const T& operator[](size_t i) const { return buf_->vec[offset_ + i]; }
  const T& front() const { return (*this)[0]; }
  const T& back() const { return (*this)[size() - 1]; }

  /// Materializes the window as a plain vector (explicit copy).
  std::vector<T> ToVector() const { return std::vector<T>(begin(), end()); }

  /// O(1) sub-window [offset, offset + count) sharing the same buffer.
  BufferView Slice(int64_t offset, int64_t count) const {
    BufferView out;
    out.buf_ = buf_;
    out.offset_ = offset_ + offset;
    out.length_ = count;
    if (buf_ && count > 0) {
      auto& stats = BufferStats::Get();
      stats.copies_avoided.fetch_add(1, std::memory_order_relaxed);
      stats.bytes_shared.fetch_add(count * static_cast<int64_t>(sizeof(T)),
                                   std::memory_order_relaxed);
    }
    return out;
  }

  /// Mutable access to the backing vector. Unshares first: a view that is
  /// shared (or exposes only part of its buffer) copies its window into a
  /// private buffer; a uniquely-owned full view mutates in place. After
  /// this call the view tracks the vector's live size, so callers may
  /// resize the returned vector freely.
  std::vector<T>& MutableVec() {
    if (!buf_) {
      buf_ = std::make_shared<buffer_detail::Buffer<T>>(std::vector<T>());
      offset_ = 0;
      length_ = -1;
      return buf_->vec;
    }
    if (buf_.use_count() == 1 && offset_ == 0 &&
        (length_ < 0 ||
         length_ == static_cast<int64_t>(buf_->vec.size()))) {
      length_ = -1;
      return buf_->vec;
    }
    if (size() == 0) {
      // Empty window over a shared buffer (a zero-row selection sliced off
      // a column, say): "unsharing" would copy nothing, yet the copy path
      // below would still count a CoW copy and allocate a private buffer
      // while keeping the old one pinned. Start from a fresh empty buffer
      // and release the shared one instead.
      buf_ = std::make_shared<buffer_detail::Buffer<T>>(std::vector<T>());
      offset_ = 0;
      length_ = -1;
      return buf_->vec;
    }
    BufferStats::Get().cow_copies.fetch_add(1, std::memory_order_relaxed);
    auto copy = std::make_shared<buffer_detail::Buffer<T>>(ToVector());
    buf_ = std::move(copy);
    offset_ = 0;
    length_ = -1;
    return buf_->vec;
  }

  /// Pre-sizes the backing vector's capacity for at least `n` total
  /// elements (unshares first, like MutableVec). A no-op when the current
  /// capacity already suffices.
  void Reserve(int64_t n) {
    std::vector<T>& v = MutableVec();
    if (static_cast<int64_t>(v.capacity()) < n) v.reserve(n);
  }

  /// Appends `n` elements with geometric capacity doubling, so building a
  /// view out of many small appends (exchange block assembly, packed-code
  /// decode) costs O(1) amortized per element regardless of the standard
  /// library's growth policy. Unshares once per call, not once per element
  /// — a shared view pays a single CoW copy, then grows in place.
  void Append(const T* values, int64_t n) {
    if (n <= 0) return;
    std::vector<T>& v = MutableVec();
    const size_t need = v.size() + static_cast<size_t>(n);
    if (need > v.capacity()) {
      size_t cap = v.capacity() == 0 ? 16 : v.capacity() * 2;
      while (cap < need) cap *= 2;
      v.reserve(cap);
    }
    v.insert(v.end(), values, values + n);
  }

  /// Single-element convenience over Append.
  void AppendValue(const T& value) { Append(&value, 1); }

  // --- introspection for accounting and tests ---
  bool has_buffer() const { return buf_ != nullptr; }
  uint64_t buffer_id() const { return buf_ ? buf_->id : 0; }
  int64_t offset() const { return offset_; }
  bool SharesBufferWith(const BufferView& other) const {
    return buf_ != nullptr && buf_ == other.buf_;
  }
  /// True when no other view can reach this buffer.
  bool unique() const { return !buf_ || buf_.use_count() == 1; }

  /// Measured payload bytes of the window (strings: heap + bookkeeping).
  int64_t view_nbytes() const {
    return buffer_detail::PayloadBytes(data(), ssize());
  }
  /// Measured payload bytes of the whole underlying buffer.
  int64_t buffer_nbytes() const {
    if (!buf_) return 0;
    return buffer_detail::PayloadBytes(
        buf_->vec.data(), static_cast<int64_t>(buf_->vec.size()));
  }

  /// Appends this view's buffer to `out` for unique-byte accounting.
  /// Views without a buffer (default-constructed, empty) contribute nothing.
  void AppendRef(std::vector<BufferRef>* out) const {
    if (!buf_) return;
    BufferRef ref;
    ref.id = buf_->id;
    ref.buffer_bytes = buffer_nbytes();
    ref.view_bytes = view_nbytes();
    ref.offset = offset_;
    ref.length = ssize();
    out->push_back(ref);
  }

  /// Two views are identical when they expose the same window of the same
  /// buffer (the serializer dedups on this to preserve sharing on spill).
  bool IdenticalTo(const BufferView& other) const {
    return buf_ == other.buf_ && offset_ == other.offset_ &&
           size() == other.size();
  }

 private:
  std::shared_ptr<buffer_detail::Buffer<T>> buf_;
  int64_t offset_ = 0;
  /// -1 = "full view": size tracks the live vector (required so callers may
  /// resize through MutableVec); >= 0 pins an explicit window length.
  int64_t length_ = -1;
};

/// Logical payload size of a set of views: window bytes summed once per
/// distinct (id, offset, length) window. Two columns exposing the same
/// window (a reused key column, say) count it once.
int64_t UniqueViewBytes(std::vector<BufferRef> refs);

/// The distinct underlying buffers among `refs`, as (id, buffer_bytes)
/// pairs sorted by id — the unit the storage layer refcounts per band.
std::vector<std::pair<uint64_t, int64_t>> UniqueBuffers(
    std::vector<BufferRef> refs);

/// Element-wise equality, so views compare naturally against vectors and
/// each other in tests and assertions.
template <typename T>
bool operator==(const BufferView<T>& a, const std::vector<T>& b) {
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}
template <typename T>
bool operator==(const std::vector<T>& a, const BufferView<T>& b) {
  return b == a;
}
template <typename T>
bool operator==(const BufferView<T>& a, const BufferView<T>& b) {
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

}  // namespace xorbits::common

#endif  // XORBITS_COMMON_BUFFER_H_
