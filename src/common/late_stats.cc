#include "common/late_stats.h"

namespace xorbits::common {

LateStats& LateStats::Get() {
  static LateStats stats;
  return stats;
}

}  // namespace xorbits::common
