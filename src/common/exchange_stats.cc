#include "common/exchange_stats.h"

namespace xorbits::common {

ExchangeStats& ExchangeStats::Get() {
  static ExchangeStats stats;
  return stats;
}

}  // namespace xorbits::common
