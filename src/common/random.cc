#include "common/random.h"

#include <cmath>

namespace xorbits {

int64_t Rng::Zipf(int64_t n, double s) {
  if (n <= 1) return 0;
  // Inverse-CDF sampling over a truncated power law. Accurate enough for
  // generating skewed join keys; not intended as an exact Zipf sampler.
  double u = Uniform(1e-12, 1.0);
  double x = std::pow(u, 1.0 / (1.0 - s));  // heavy head at x == 1
  int64_t v = static_cast<int64_t>(x) - 1;
  if (v < 0) v = 0;
  if (v >= n) v = n - 1;
  return v;
}

std::string Rng::String(int len) {
  std::string s;
  s.reserve(len);
  for (int i = 0; i < len; ++i) {
    s.push_back(static_cast<char>('a' + UniformInt(0, 25)));
  }
  return s;
}

}  // namespace xorbits
