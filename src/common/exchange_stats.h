#ifndef XORBITS_COMMON_EXCHANGE_STATS_H_
#define XORBITS_COMMON_EXCHANGE_STATS_H_

#include <atomic>
#include <cstdint>

namespace xorbits::common {

/// Process-global counters for the pipelined block exchange (DESIGN.md
/// §11). Like BufferStats/KernelStats/LateStats they sit below
/// Metrics/Session — blocks are produced inside operator kernels and
/// consumed by the executor across sessions — so they are global and
/// `Metrics::Snapshot` surfaces them as gauges. All updates are relaxed
/// atomics; the totals are monotone and cross-thread ordering is
/// irrelevant.
struct ExchangeStats {
  /// Serialized (v4 packed-code) bytes of every shuffle block pushed into
  /// the exchange — what crossing the wire would cost. Compare against
  /// shuffle_memory_bytes for the compression ratio the CI smoke gate
  /// enforces (wire <= 0.7x memory on dict-encoded TPC-H lineitem keys).
  std::atomic<int64_t> shuffle_wire_bytes{0};
  /// Logical in-memory bytes (ChunkData::nbytes) of the same blocks —
  /// what the eager whole-partition path would have held resident.
  std::atomic<int64_t> shuffle_memory_bytes{0};
  /// Blocks emitted by shuffle-map operators through the exchange.
  std::atomic<int64_t> shuffle_blocks_produced{0};
  /// Blocks fetched and concatenated by reduce-side subtasks.
  std::atomic<int64_t> shuffle_blocks_consumed{0};
  /// Cold blocks pushed to disk by exchange backpressure (a subset of the
  /// storage layer's spill_events: only spills the exchange initiated).
  std::atomic<int64_t> shuffle_blocks_spilled{0};
  /// Blocks rebuilt by lineage recovery after chaos-injected block loss
  /// (re-running the producing mapper).
  std::atomic<int64_t> shuffle_blocks_recovered{0};
  /// Wall-clock microseconds producers spent in the flow-control path
  /// (spilling their own cold blocks because the receiving band was near
  /// its storage budget).
  std::atomic<int64_t> exchange_backpressure_us{0};

  static ExchangeStats& Get();
  void Reset() {
    shuffle_wire_bytes.store(0, std::memory_order_relaxed);
    shuffle_memory_bytes.store(0, std::memory_order_relaxed);
    shuffle_blocks_produced.store(0, std::memory_order_relaxed);
    shuffle_blocks_consumed.store(0, std::memory_order_relaxed);
    shuffle_blocks_spilled.store(0, std::memory_order_relaxed);
    shuffle_blocks_recovered.store(0, std::memory_order_relaxed);
    exchange_backpressure_us.store(0, std::memory_order_relaxed);
  }
};

}  // namespace xorbits::common

#endif  // XORBITS_COMMON_EXCHANGE_STATS_H_
