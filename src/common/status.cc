#include "common/status.h"

namespace xorbits {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalid: return "Invalid";
    case StatusCode::kKeyError: return "KeyError";
    case StatusCode::kTypeError: return "TypeError";
    case StatusCode::kIndexError: return "IndexError";
    case StatusCode::kNotImplemented: return "NotImplemented";
    case StatusCode::kOutOfMemory: return "OutOfMemory";
    case StatusCode::kIOError: return "IOError";
    case StatusCode::kTimeout: return "Timeout";
    case StatusCode::kExecutionError: return "ExecutionError";
    case StatusCode::kCancelled: return "Cancelled";
    case StatusCode::kWorkerLost: return "WorkerLost";
    case StatusCode::kChunkLost: return "ChunkLost";
    case StatusCode::kOverloaded: return "Overloaded";
    case StatusCode::kQuotaExceeded: return "QuotaExceeded";
  }
  return "Unknown";
}

}  // namespace xorbits
