#include "common/config.h"

namespace xorbits {

const char* EngineKindName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kXorbits: return "xorbits";
    case EngineKind::kPandasLike: return "pandas";
    case EngineKind::kDaskLike: return "dask";
    case EngineKind::kModinLike: return "modin";
    case EngineKind::kSparkLike: return "pyspark";
  }
  return "?";
}

Status Config::Validate() const {
  if (num_workers <= 0) {
    return Status::Invalid("num_workers must be positive, got " +
                           std::to_string(num_workers));
  }
  if (bands_per_worker <= 0) {
    return Status::Invalid("bands_per_worker must be positive, got " +
                           std::to_string(bands_per_worker));
  }
  if (band_memory_limit <= 0) {
    return Status::Invalid("band_memory_limit must be positive, got " +
                           std::to_string(band_memory_limit));
  }
  if (max_concurrent_sessions < 0) {
    return Status::Invalid("max_concurrent_sessions must be >= 0 (0 = "
                           "unlimited), got " +
                           std::to_string(max_concurrent_sessions));
  }
  // 0 would admit a session that can never store a byte; -1 is the explicit
  // "disabled" sentinel. Anything below -1 is a sign bug in the caller.
  if (session_memory_quota_bytes == 0 || session_memory_quota_bytes < -1) {
    return Status::Invalid(
        "session_memory_quota_bytes must be positive or -1 (disabled), "
        "got " +
        std::to_string(session_memory_quota_bytes));
  }
  if (admission_queue_depth < 0) {
    return Status::Invalid("admission_queue_depth must be >= 0, got " +
                           std::to_string(admission_queue_depth));
  }
  if (admission_timeout_ms < 0) {
    return Status::Invalid("admission_timeout_ms must be >= 0, got " +
                           std::to_string(admission_timeout_ms));
  }
  if (session_priority < 1 || session_priority > 100) {
    return Status::Invalid("session_priority must be in [1, 100], got " +
                           std::to_string(session_priority));
  }
  if (session_max_inflight < 0) {
    return Status::Invalid("session_max_inflight must be >= 0 (0 = "
                           "unlimited), got " +
                           std::to_string(session_max_inflight));
  }
  if (shuffle_block_bytes <= 0) {
    return Status::Invalid("shuffle_block_bytes must be positive, got " +
                           std::to_string(shuffle_block_bytes));
  }
  if (exchange_backpressure_watermark <= 0.0 ||
      exchange_backpressure_watermark > 1.0) {
    return Status::Invalid(
        "exchange_backpressure_watermark must be in (0, 1], got " +
        std::to_string(exchange_backpressure_watermark));
  }
  // A zero/negative budget with the cache on would evict every publish
  // immediately — an un-usable cache is a config bug, not a policy.
  if (enable_result_cache && result_cache_budget_bytes <= 0) {
    return Status::Invalid(
        "result_cache_budget_bytes must be positive when "
        "enable_result_cache is set, got " +
        std::to_string(result_cache_budget_bytes));
  }
  return Status::OK();
}

Config Config::Preset(EngineKind kind) {
  Config c;
  c.engine = kind;
  switch (kind) {
    case EngineKind::kXorbits:
      // The full system; the storage service spills cold chunks to disk
      // (paper §V-C memory->disk StorageLevels).
      c.enable_spill = true;
      break;
    case EngineKind::kPandasLike:
      // Single-threaded, single in-memory space, no tiling, no optimizer.
      c.num_workers = 1;
      c.bands_per_worker = 1;
      c.cpus_per_band = 1;  // pandas kernels hold the GIL
      c.dynamic_tiling = false;
      c.graph_fusion = false;
      c.op_fusion = false;
      c.column_pruning = false;
      c.reduce_policy = ReducePolicy::kTree;
      c.numa_aware = false;
      break;
    case EngineKind::kDaskLike:
      // Static task graphs built ahead of execution; tree-reduce default
      // aggregations; no runtime metadata.
      c.dynamic_tiling = false;
      c.op_fusion = false;
      c.reduce_policy = ReducePolicy::kTree;
      c.enable_spill = true;  // Dask workers spill to disk
      c.numa_aware = false;
      break;
    case EngineKind::kModinLike:
      // Static row partitioning decided from the initial source size; no
      // spill management (Ray workers die on memory pressure). Modin's
      // query compiler fuses per-partition pipelines, so graph-level
      // fusion stays on.
      c.dynamic_tiling = false;
      c.op_fusion = false;
      c.column_pruning = false;
      c.reduce_policy = ReducePolicy::kShuffle;
      c.enable_spill = false;
      c.numa_aware = false;
      break;
    case EngineKind::kSparkLike:
      // Static physical plans with size-rule shuffles; whole-stage fusion is
      // comparable to graph fusion, so keep it on; spill supported.
      c.dynamic_tiling = false;
      c.op_fusion = false;
      c.reduce_policy = ReducePolicy::kShuffle;
      c.enable_spill = true;
      c.numa_aware = false;
      break;
  }
  return c;
}

}  // namespace xorbits
