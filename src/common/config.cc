#include "common/config.h"

namespace xorbits {

const char* EngineKindName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kXorbits: return "xorbits";
    case EngineKind::kPandasLike: return "pandas";
    case EngineKind::kDaskLike: return "dask";
    case EngineKind::kModinLike: return "modin";
    case EngineKind::kSparkLike: return "pyspark";
  }
  return "?";
}

Config Config::Preset(EngineKind kind) {
  Config c;
  c.engine = kind;
  switch (kind) {
    case EngineKind::kXorbits:
      // The full system; the storage service spills cold chunks to disk
      // (paper §V-C memory->disk StorageLevels).
      c.enable_spill = true;
      break;
    case EngineKind::kPandasLike:
      // Single-threaded, single in-memory space, no tiling, no optimizer.
      c.num_workers = 1;
      c.bands_per_worker = 1;
      c.cpus_per_band = 1;  // pandas kernels hold the GIL
      c.dynamic_tiling = false;
      c.graph_fusion = false;
      c.op_fusion = false;
      c.column_pruning = false;
      c.reduce_policy = ReducePolicy::kTree;
      c.numa_aware = false;
      break;
    case EngineKind::kDaskLike:
      // Static task graphs built ahead of execution; tree-reduce default
      // aggregations; no runtime metadata.
      c.dynamic_tiling = false;
      c.op_fusion = false;
      c.reduce_policy = ReducePolicy::kTree;
      c.enable_spill = true;  // Dask workers spill to disk
      c.numa_aware = false;
      break;
    case EngineKind::kModinLike:
      // Static row partitioning decided from the initial source size; no
      // spill management (Ray workers die on memory pressure). Modin's
      // query compiler fuses per-partition pipelines, so graph-level
      // fusion stays on.
      c.dynamic_tiling = false;
      c.op_fusion = false;
      c.column_pruning = false;
      c.reduce_policy = ReducePolicy::kShuffle;
      c.enable_spill = false;
      c.numa_aware = false;
      break;
    case EngineKind::kSparkLike:
      // Static physical plans with size-rule shuffles; whole-stage fusion is
      // comparable to graph fusion, so keep it on; spill supported.
      c.dynamic_tiling = false;
      c.op_fusion = false;
      c.reduce_policy = ReducePolicy::kShuffle;
      c.enable_spill = true;
      c.numa_aware = false;
      break;
  }
  return c;
}

}  // namespace xorbits
