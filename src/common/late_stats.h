#ifndef XORBITS_COMMON_LATE_STATS_H_
#define XORBITS_COMMON_LATE_STATS_H_

#include <atomic>
#include <cstdint>

namespace xorbits::common {

/// Process-global counters for the late-materialization data path
/// (DESIGN.md §10). Like BufferStats/KernelStats they live below
/// Metrics/Session — the dataframe layer that resolves selections has no
/// session handle — so they are global and `Metrics::Snapshot` surfaces
/// them as gauges. All updates are relaxed atomics; the totals are
/// monotone and cross-thread ordering is irrelevant.
struct LateStats {
  /// Column-payload bytes made dense in memory: counted when an eager
  /// filter/take compacts a frame, when a lazy column source decodes, and
  /// when a pending selection is resolved against a column. The late path's
  /// figure of merit: at low selectivity it tracks the selected rows, not
  /// the input size (`bytes_materialized / eager bytes_materialized` is the
  /// selectivity-sweep ratio in BENCH_kernels.json).
  std::atomic<int64_t> bytes_materialized{0};
  /// Frame-level events where a consumer that genuinely needs dense data
  /// (serialize/spill, shuffle partitioning, concat, row take, result
  /// fetch, column mutation) forced a pending selection or lazy slots to
  /// compact.
  std::atomic<int64_t> selections_forced{0};
  /// Column slots decoded on demand from a lazy source (an xparquet block
  /// thunk or a deferred expression). An untouched column never counts.
  std::atomic<int64_t> lazy_columns_decoded{0};
  /// Column transforms (string ops, datetime extraction, casts, arithmetic)
  /// attached as deferred expression sources instead of being evaluated
  /// eagerly at assignment time.
  std::atomic<int64_t> deferred_transforms{0};

  static LateStats& Get();
  void Reset() {
    bytes_materialized.store(0, std::memory_order_relaxed);
    selections_forced.store(0, std::memory_order_relaxed);
    lazy_columns_decoded.store(0, std::memory_order_relaxed);
    deferred_transforms.store(0, std::memory_order_relaxed);
  }
};

}  // namespace xorbits::common

#endif  // XORBITS_COMMON_LATE_STATS_H_
