#ifndef XORBITS_COMMON_TRACING_H_
#define XORBITS_COMMON_TRACING_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"

namespace xorbits {

/// Fixed per-process track (Chrome "thread") layout: every traced session
/// gets one supervisor track (graph construction, optimizer passes, partial
/// execution), one tiling track (per-operator tile spans and yields), one
/// storage track (spill/OOM/chaos events), and one track per band.
inline constexpr int kTrackSupervisor = 0;
inline constexpr int kTrackTiling = 1;
inline constexpr int kTrackStorage = 2;
inline constexpr int kTrackBandBase = 3;

/// One key/value annotation on an event. `numeric` values are emitted as
/// JSON numbers, everything else as strings.
struct TraceArg {
  std::string key;
  std::string value;
  bool numeric = false;
};
using TraceArgs = std::vector<TraceArg>;

inline TraceArg Arg(std::string key, std::string value) {
  return {std::move(key), std::move(value), false};
}
inline TraceArg Arg(std::string key, const char* value) {
  return {std::move(key), value, false};
}
inline TraceArg Arg(std::string key, int64_t value) {
  return {std::move(key), std::to_string(value), true};
}

/// Decomposition of one session's simulated time along the critical path of
/// each executed subtask graph; the run report's stage totals sum to the
/// session's `simulated_us` exactly (see DESIGN.md §4).
enum class TraceStage : int {
  kKernelSerial = 0,  // band-thread kernel CPU on the critical chain
  kKernelParallel,    // pool kernel CPU / cpus_per_band on the chain
  kDispatch,          // per-subtask supervisor RPC/dispatch latency
  kTransfer,          // modeled cross-band network time
  kStore,             // modeled storage (de)serialization time
  kRecovery,          // lineage recompute (in-run and supervisor-side)
  kSpill,             // modeled spill disk backpressure
  kIdle,              // critical-chain wait (band busy with other work)
};
inline constexpr int kTraceStageCount = 8;
const char* TraceStageName(TraceStage stage);

/// One recorded event, timestamped in the owning process's simulated time.
struct TraceEvent {
  enum class Phase : char { kComplete = 'X', kInstant = 'i' };
  std::string name;
  Phase phase = Phase::kInstant;
  int pid = 0;
  int tid = kTrackSupervisor;
  int64_t ts_us = 0;
  int64_t dur_us = 0;
  bool critical = false;  // on the critical path (subtask events)
  TraceArgs args;
};

/// Thread-safe structured-trace sink. A Tracer can host several sessions at
/// once (each registers a "process" with its own track group and simulated
/// clock); the bench harness shares one Tracer across every traced run and
/// exports a single Chrome/Perfetto JSON plus one text run report per
/// process.
///
/// Cost model: the tracer only exists when tracing is requested
/// (`Config::trace.sink != nullptr`); every emitting site checks that
/// pointer first, so the disabled path is a null test with no allocation.
/// When enabled, events land in one of 16 mutex-sharded buffers (shard
/// picked by thread id), so concurrent band workers almost never contend.
///
/// Time base: all timestamps are **simulated** microseconds. Each process
/// owns a cursor (`sim_now`) that the executor advances by the makespan of
/// every subtask-graph run; supervisor-side spans (tiling, fusion) capture
/// the cursor at begin/end, so a tile span that paused for two partial
/// executions spans their combined simulated time, and wall-clock cost of
/// supervisor work is attached as a `wall_us` arg instead.
class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Registers a session; returns its process id. Emits Chrome metadata
  /// naming the process and its tracks (one per band).
  int RegisterProcess(const std::string& name, int num_bands);

  /// Attaches the session's final metrics (rendered in the run report).
  /// Sessions call this at destruction so reports outlive them.
  void SetProcessMetrics(int pid, MetricsSnapshot snapshot);

  int64_t sim_now(int pid) const;
  void AdvanceSim(int pid, int64_t us);
  void AddStage(int pid, TraceStage stage, int64_t us);
  int64_t stage_total(int pid, TraceStage stage) const;

  void Emit(TraceEvent event);
  void Instant(int pid, int tid, std::string name, TraceArgs args = {});
  /// Complete event at an explicit simulated timestamp (the executor emits
  /// subtask events post-hoc once the schedule is known).
  void CompleteAt(int pid, int tid, std::string name, int64_t ts_us,
                  int64_t dur_us, TraceArgs args = {}, bool critical = false);

  /// Explicit span handle for scopes that outlive one C++ scope — the tile
  /// spans stay open across co_yield suspensions of the tile coroutine.
  struct Span {
    int pid = -1;
    int tid = kTrackSupervisor;
    std::string name;
    int64_t sim_start_us = 0;
    int64_t wall_start_us = 0;
    TraceArgs args;
    bool active = false;
  };
  Span BeginSpan(int pid, int tid, std::string name, TraceArgs args = {});
  /// Emits the complete event for `span` (no-op when inactive) and
  /// deactivates it. `extra` args are appended.
  void EndSpan(Span* span, TraceArgs extra = {});

  int64_t event_count() const {
    return event_count_.load(std::memory_order_relaxed);
  }
  std::vector<int> process_ids() const;
  std::string process_name(int pid) const;

  /// All recorded events (flushed from every shard), in no particular
  /// order. Used by tests and the report renderer.
  std::vector<TraceEvent> SnapshotEvents() const;

  /// Chrome-tracing / Perfetto JSON of every process.
  std::string ToChromeJson() const;
  Status WriteChromeTrace(const std::string& path) const;

  /// Plain-text run report for one process: critical-path stage breakdown
  /// (sums to the process's simulated total), per-op band-time, per-band
  /// busy/idle/spill, peak memory watermarks, histograms.
  std::string RenderRunReport(int pid) const;
  /// Reports for every registered process, concatenated.
  std::string RenderAllReports() const;

 private:
  struct Process {
    std::string name;
    int num_bands = 0;
    std::atomic<int64_t> sim_now{0};
    std::array<std::atomic<int64_t>, kTraceStageCount> stages{};
    std::optional<MetricsSnapshot> metrics;
  };
  struct Shard {
    mutable std::mutex mu;
    std::vector<TraceEvent> events;
  };

  Process* process(int pid) const;
  Shard& ShardForThisThread();

  mutable std::mutex mu_;  // guards processes_
  std::vector<std::unique_ptr<Process>> processes_;
  static constexpr int kNumShards = 16;
  mutable std::array<Shard, kNumShards> shards_;
  std::atomic<int64_t> event_count_{0};
};

/// RAII span: begins on construction, ends on destruction. All constructors
/// are no-ops when `tracer` is null (the disabled path allocates nothing —
/// take care to only build dynamic names inside a `if (tracer)` guard).
class TraceSpan {
 public:
  TraceSpan() = default;
  TraceSpan(Tracer* tracer, int pid, int tid, const char* name) {
    if (tracer != nullptr) {
      tracer_ = tracer;
      span_ = tracer->BeginSpan(pid, tid, name);
    }
  }
  TraceSpan(Tracer* tracer, int pid, int tid, std::string name,
            TraceArgs args) {
    if (tracer != nullptr) {
      tracer_ = tracer;
      span_ = tracer->BeginSpan(pid, tid, std::move(name), std::move(args));
    }
  }
  TraceSpan(TraceSpan&& other) noexcept { *this = std::move(other); }
  TraceSpan& operator=(TraceSpan&& other) noexcept {
    if (this != &other) {
      End();
      tracer_ = other.tracer_;
      span_ = std::move(other.span_);
      other.tracer_ = nullptr;
      other.span_.active = false;
    }
    return *this;
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() { End(); }

  void AddArg(TraceArg arg) {
    if (tracer_ != nullptr) span_.args.push_back(std::move(arg));
  }
  /// Ends the span early (idempotent).
  void End() {
    if (tracer_ != nullptr) tracer_->EndSpan(&span_);
  }

 private:
  Tracer* tracer_ = nullptr;
  Tracer::Span span_;
};

}  // namespace xorbits

#endif  // XORBITS_COMMON_TRACING_H_
