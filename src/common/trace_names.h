#ifndef XORBITS_COMMON_TRACE_NAMES_H_
#define XORBITS_COMMON_TRACE_NAMES_H_

/// Central registry of every span, event, and named-metric identifier the
/// observability layer emits. All emitting sites reference these constants
/// instead of string literals so that (a) names cannot drift between the
/// code and OBSERVABILITY.md and (b) `tools/docs_check.sh` can grep this
/// one file and fail the `docs_check` ctest when a name is missing from
/// the reference. Add a new name here + a row in OBSERVABILITY.md together.
///
/// Naming scheme: `<subsystem>:<what>`; spans that embed a dynamic suffix
/// (operator type, chunk key) are declared as `k...Prefix` constants and
/// documented as `prefix<suffix>`.

#define XORBITS_SPAN_NAME(ident, str) inline constexpr char ident[] = str;
#define XORBITS_EVENT_NAME(ident, str) inline constexpr char ident[] = str;
#define XORBITS_METRIC_NAME(ident, str) inline constexpr char ident[] = str;

namespace xorbits::trace {

// --- spans (Chrome "X" complete events) ---
XORBITS_SPAN_NAME(kSpanMaterialize, "materialize")
XORBITS_SPAN_NAME(kSpanColumnPruning, "optimize:column_pruning")
XORBITS_SPAN_NAME(kSpanTilePrefix, "tile:")
XORBITS_SPAN_NAME(kSpanExecutePartial, "execute_partial")
XORBITS_SPAN_NAME(kSpanOpFusion, "optimize:op_fusion")
XORBITS_SPAN_NAME(kSpanGraphFusion, "optimize:graph_fusion")
// Every optimizer pass emits one span per run, named `optimize:<pass>`;
// the three constants above cover the migrated passes, these the new ones.
XORBITS_SPAN_NAME(kSpanPassPrefix, "optimize:")
XORBITS_SPAN_NAME(kSpanPredicatePushdown, "optimize:predicate_pushdown")
XORBITS_SPAN_NAME(kSpanDeadNodeElim, "optimize:dead_node_elim")
XORBITS_SPAN_NAME(kSpanCse, "optimize:cse")
XORBITS_SPAN_NAME(kSpanResultCache, "optimize:result_cache")
XORBITS_SPAN_NAME(kSpanScheduleRun, "schedule:run")
XORBITS_SPAN_NAME(kSpanRecoverPrefix, "recover:")
XORBITS_SPAN_NAME(kSpanSubtaskPrefix, "subtask:")
XORBITS_SPAN_NAME(kSpanSpillBackpressure, "storage:spill_backpressure")
XORBITS_SPAN_NAME(kSpanSessionSubmit, "session:submit")
// Pipelined block exchange (DESIGN.md §11): producer-side block push
// (includes any backpressure spill time) and reduce-side partition fetch.
XORBITS_SPAN_NAME(kSpanExchangePush, "exchange:push")
XORBITS_SPAN_NAME(kSpanExchangeFetch, "exchange:fetch")

// --- instant events (Chrome "i" events) ---
XORBITS_EVENT_NAME(kEventAddTileable, "graph:add_tileable")
XORBITS_EVENT_NAME(kEventTileYield, "tile:yield")
XORBITS_EVENT_NAME(kEventPlacement, "schedule:placement")
XORBITS_EVENT_NAME(kEventSubtaskRetry, "subtask:retry")
XORBITS_EVENT_NAME(kEventFaultTransient, "fault:transient")
XORBITS_EVENT_NAME(kEventBandKill, "chaos:band_kill")
XORBITS_EVENT_NAME(kEventChunkLoss, "chaos:chunk_loss")
XORBITS_EVENT_NAME(kEventSpill, "storage:spill")
XORBITS_EVENT_NAME(kEventOom, "storage:oom")
XORBITS_EVENT_NAME(kEventStoragePut, "storage:put")
XORBITS_EVENT_NAME(kEventStorageGet, "storage:get")
XORBITS_EVENT_NAME(kEventFetch, "fetch:chunks")
XORBITS_EVENT_NAME(kEventSessionCreate, "session:create")
XORBITS_EVENT_NAME(kEventSessionClose, "session:close")
XORBITS_EVENT_NAME(kEventSessionShed, "session:shed")
XORBITS_EVENT_NAME(kEventQuotaExceeded, "storage:quota_exceeded")
XORBITS_EVENT_NAME(kEventCacheEvict, "cache:evict")
XORBITS_EVENT_NAME(kEventCacheInvalidate, "cache:invalidate")
// Pipelined block exchange (DESIGN.md §11): a partition's block stream
// sealed (reducer may start) and a producer throttled by flow control.
XORBITS_EVENT_NAME(kEventExchangeSeal, "exchange:seal")
XORBITS_EVENT_NAME(kEventExchangeBackpressure, "exchange:backpressure")

// --- registry metrics (gauges + histograms; see MetricsRegistry) ---
XORBITS_METRIC_NAME(kHistSubtaskLatencyUs, "subtask_latency_us")
XORBITS_METRIC_NAME(kHistChunkBytes, "chunk_bytes")
XORBITS_METRIC_NAME(kHistQueueWaitUs, "queue_wait_us")
XORBITS_METRIC_NAME(kGaugeBandPeakBytesPrefix, "band_peak_bytes/")
XORBITS_METRIC_NAME(kGaugeBandSpillBytesPrefix, "band_spill_bytes/")
XORBITS_METRIC_NAME(kGaugeBandReplicaBytesPrefix, "band_replica_bytes/")
XORBITS_METRIC_NAME(kGaugeMetaEntries, "meta_entries")
XORBITS_METRIC_NAME(kGaugeLineageEntries, "lineage_entries")
XORBITS_METRIC_NAME(kGaugeBufferBytesShared, "buffer_bytes_shared")
XORBITS_METRIC_NAME(kGaugeChunkCopiesAvoided, "chunk_copies_avoided")
XORBITS_METRIC_NAME(kGaugeBufferCowCopies, "buffer_cow_copies")
XORBITS_METRIC_NAME(kGaugeDictEncodedColumns, "dict_encoded_columns")
XORBITS_METRIC_NAME(kGaugeDictFallbackDecodes, "dict_fallback_decodes")
XORBITS_METRIC_NAME(kGaugeJoinRadixPartitions, "join_radix_partitions")
// Per-pass pipeline gauges. The suffix `<l><i>_<pass>` encodes the level
// (t/c/s for tileable/chunk/subtask), the position in that level's
// pipeline, and the pass name — e.g. `optimizer_pass_us/t1_column_pruning`
// — so a sorted gauge snapshot reproduces each pipeline in order.
XORBITS_METRIC_NAME(kGaugePassRunsPrefix, "optimizer_pass_runs/")
XORBITS_METRIC_NAME(kGaugePassUsPrefix, "optimizer_pass_us/")
XORBITS_METRIC_NAME(kGaugePassRemovedPrefix, "optimizer_nodes_removed/")
XORBITS_METRIC_NAME(kGaugePassRewrittenPrefix, "optimizer_nodes_rewritten/")
// Multi-tenant serving (DESIGN.md §8): admission queue wait, live/shed
// session counts on the cluster process, and per-session in-memory bytes
// the quota is enforced against.
XORBITS_METRIC_NAME(kHistSessionQueueWaitUs, "session_queue_wait_us")
XORBITS_METRIC_NAME(kGaugeSessionsActive, "sessions_active")
XORBITS_METRIC_NAME(kGaugeSessionsShed, "sessions_shed")
XORBITS_METRIC_NAME(kGaugeSessionBytesPrefix, "session_bytes_used/")
// Result cache (DESIGN.md §9): live bytes/entries in the cluster-level
// `cache/` namespace, charged to result_cache_budget_bytes.
XORBITS_METRIC_NAME(kGaugeCacheBytes, "cache_bytes")
XORBITS_METRIC_NAME(kGaugeCacheEntries, "cache_entries")
// Late materialization (DESIGN.md §10): bytes turned dense (decoded or
// gathered through a selection), forced compactions, lazy column decodes,
// and deferred expression assignments. Process-global like BufferStats.
XORBITS_METRIC_NAME(kGaugeBytesMaterialized, "bytes_materialized")
XORBITS_METRIC_NAME(kGaugeSelectionsForced, "selections_forced")
XORBITS_METRIC_NAME(kGaugeLazyColumnsDecoded, "lazy_columns_decoded")
XORBITS_METRIC_NAME(kGaugeDeferredTransforms, "deferred_transforms")
// Pipelined block exchange (DESIGN.md §11): compressed wire vs logical
// in-memory shuffle bytes, block lifecycle counts, and producer time lost
// to flow control. Process-global like BufferStats (ExchangeStats).
XORBITS_METRIC_NAME(kGaugeShuffleWireBytes, "shuffle_wire_bytes")
XORBITS_METRIC_NAME(kGaugeShuffleMemoryBytes, "shuffle_memory_bytes")
XORBITS_METRIC_NAME(kGaugeShuffleBlocksProduced, "shuffle_blocks_produced")
XORBITS_METRIC_NAME(kGaugeShuffleBlocksConsumed, "shuffle_blocks_consumed")
XORBITS_METRIC_NAME(kGaugeShuffleBlocksSpilled, "shuffle_blocks_spilled")
XORBITS_METRIC_NAME(kGaugeShuffleBlocksRecovered, "shuffle_blocks_recovered")
XORBITS_METRIC_NAME(kGaugeExchangeBackpressureUs, "exchange_backpressure_us")

}  // namespace xorbits::trace

#undef XORBITS_SPAN_NAME
#undef XORBITS_EVENT_NAME
#undef XORBITS_METRIC_NAME

#endif  // XORBITS_COMMON_TRACE_NAMES_H_
