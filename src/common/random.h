#ifndef XORBITS_COMMON_RANDOM_H_
#define XORBITS_COMMON_RANDOM_H_

#include <cstdint>
#include <random>
#include <string>

namespace xorbits {

/// Deterministic RNG used by data generators and random tensors so that every
/// test and bench is reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : gen_(seed) {}

  double Uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(gen_);
  }
  double Normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(gen_);
  }
  int64_t UniformInt(int64_t lo, int64_t hi) {  // inclusive bounds
    return std::uniform_int_distribution<int64_t>(lo, hi)(gen_);
  }
  /// Zipf-like skewed draw over [0, n): probability of 0 dominates with
  /// exponent `s`. Used by the skewed-merge workloads.
  int64_t Zipf(int64_t n, double s);

  /// Random lowercase ASCII string of the given length.
  std::string String(int len);

  std::mt19937_64& gen() { return gen_; }

 private:
  std::mt19937_64 gen_;
};

}  // namespace xorbits

#endif  // XORBITS_COMMON_RANDOM_H_
