#ifndef XORBITS_COMMON_RESULT_H_
#define XORBITS_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace xorbits {

/// Value-or-error container, mirroring arrow::Result. A `Result<T>` holds
/// either a valid `T` or a non-OK `Status` explaining why it is absent.
template <typename T>
class Result {
 public:
  /// Constructs an errored result; `status` must be non-OK.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : repr_(std::move(status)) {
    assert(!std::get<Status>(repr_).ok());
  }
  Result(T value)  // NOLINT(google-explicit-constructor)
      : repr_(std::move(value)) {}

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    if (ok()) return kOk;
    return std::get<Status>(repr_);
  }

  const T& ValueOrDie() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T ValueOrDie() && {
    assert(ok());
    return std::move(std::get<T>(repr_));
  }

  /// Moves the value out; only valid when ok().
  T MoveValue() {
    assert(ok());
    return std::move(std::get<T>(repr_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<Status, T> repr_;
};

/// Evaluates an expression returning Result<T>; on error returns the status,
/// otherwise assigns the value to `lhs` (which may be a declaration).
#define XORBITS_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).MoveValue()

#define XORBITS_ASSIGN_OR_RETURN(lhs, expr) \
  XORBITS_ASSIGN_OR_RETURN_IMPL(            \
      XORBITS_CONCAT(_result_tmp_, __COUNTER__), lhs, expr)

}  // namespace xorbits

#endif  // XORBITS_COMMON_RESULT_H_
