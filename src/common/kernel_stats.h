#ifndef XORBITS_COMMON_KERNEL_STATS_H_
#define XORBITS_COMMON_KERNEL_STATS_H_

#include <atomic>
#include <cstdint>

namespace xorbits::common {

/// Process-global counters for the dictionary-encoding and radix-join
/// kernel paths. Like BufferStats they live below Metrics/Session (the
/// dataframe kernels have no session handle), so they are global and
/// `Metrics::Snapshot` surfaces them as gauges. All updates are relaxed
/// atomics — the totals are monotone and ordering is irrelevant.
struct KernelStats {
  /// String columns materialized in dictionary encoding (at xparquet read
  /// time or by an explicit DictEncode).
  std::atomic<int64_t> dict_encoded_columns{0};
  /// Dictionary columns a kernel had to decode back to plain strings
  /// because it has no dictionary fast path (the fallback rule of
  /// DESIGN.md §7; a rising count flags a kernel worth teaching codes).
  std::atomic<int64_t> dict_fallback_decodes{0};
  /// Radix partitions built across all hash joins (1 per join when the
  /// build side is small; more as the build side grows).
  std::atomic<int64_t> join_radix_partitions{0};

  static KernelStats& Get();
  void Reset() {
    dict_encoded_columns.store(0, std::memory_order_relaxed);
    dict_fallback_decodes.store(0, std::memory_order_relaxed);
    join_radix_partitions.store(0, std::memory_order_relaxed);
  }
};

}  // namespace xorbits::common

#endif  // XORBITS_COMMON_KERNEL_STATS_H_
