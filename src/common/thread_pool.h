#ifndef XORBITS_COMMON_THREAD_POOL_H_
#define XORBITS_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace xorbits {

/// Fixed-size worker pool. Workers in the simulated cluster submit subtask
/// bodies here; `WaitIdle` blocks until every submitted task has finished.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn` for execution on some pool thread.
  void Submit(std::function<void()> fn);

  /// Blocks until the queue is empty and no task is running.
  void WaitIdle();

  int num_threads() const { return static_cast<int>(threads_.size()); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;       // wakes workers
  std::condition_variable idle_cv_;  // wakes WaitIdle
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  int active_ = 0;
  bool shutdown_ = false;
};

}  // namespace xorbits

#endif  // XORBITS_COMMON_THREAD_POOL_H_
