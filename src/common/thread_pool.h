#ifndef XORBITS_COMMON_THREAD_POOL_H_
#define XORBITS_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace xorbits {

/// Morsel body: processes rows/elements in [begin, end).
using MorselFn = std::function<void(int64_t, int64_t)>;

/// Work-stealing worker pool. Each worker owns a deque: it pops its own
/// tasks LIFO (cache-warm) and steals from siblings FIFO (oldest first);
/// external submissions round-robin across workers. Band workers in the
/// simulated cluster share one pool per worker node and run chunk-kernel
/// morsels on it via `ParallelFor`.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn` for execution on some pool thread.
  void Submit(std::function<void()> fn);

  /// Blocks until every queue is empty and no task is running.
  void WaitIdle();

  int num_threads() const { return static_cast<int>(threads_.size()); }

  /// Runs `fn` over [begin, end) split into grain-sized morsels, blocking
  /// until all morsels finished. The calling thread participates (it claims
  /// morsels like a pool worker), so nested use cannot deadlock. The first
  /// exception thrown by a morsel is rethrown on the caller after all
  /// claimed morsels drain. Morsel decomposition depends only on
  /// (begin, end, grain) — never on thread count — so kernels that write
  /// disjoint per-morsel outputs and merge them in morsel-index order are
  /// byte-identical at any parallelism.
  void RunParallelFor(int64_t begin, int64_t end, int64_t grain,
                      const MorselFn& fn);

 private:
  struct Worker {
    std::deque<std::function<void()>> deque;
  };

  void WorkerLoop(int self);
  /// Pops a task: own deque back, then steal sibling fronts. mu_ held.
  bool PopTask(int self, std::function<void()>* out);

  std::mutex mu_;
  std::condition_variable cv_;       // wakes workers
  std::condition_variable idle_cv_;  // wakes WaitIdle
  std::vector<Worker> workers_;
  std::vector<std::thread> threads_;
  std::atomic<uint64_t> submit_seq_{0};  // round-robin for external submits
  int active_ = 0;
  int queued_ = 0;
  bool shutdown_ = false;
};

/// Accumulates CPU time spent inside `ParallelFor`/`ParallelReduce` morsels
/// while installed on the current thread (RAII). `total_us` counts morsel
/// CPU across all executing threads; `inline_us` counts the share executed
/// on the installing thread itself (already visible to that thread's
/// CLOCK_THREAD_CPUTIME_ID). The executor installs one scope per subtask so
/// work offloaded to pool threads enters the simulated cost model instead
/// of being free.
class ParallelCpuScope {
 public:
  ParallelCpuScope();
  ~ParallelCpuScope();

  ParallelCpuScope(const ParallelCpuScope&) = delete;
  ParallelCpuScope& operator=(const ParallelCpuScope&) = delete;

  int64_t total_us() const { return total_us_.load(std::memory_order_relaxed); }
  int64_t inline_us() const {
    return inline_us_.load(std::memory_order_relaxed);
  }

  /// Morsel runners report here (owner = ran on the installing thread).
  void Add(int64_t us, bool owner);

 private:
  std::atomic<int64_t> total_us_{0};
  std::atomic<int64_t> inline_us_{0};
  ParallelCpuScope* prev_;  // scopes nest per thread
};

/// Installs `pool` as the current thread's kernel pool; chunk kernels pick
/// it up through the free `ParallelFor` below. Pass nullptr to force serial
/// execution. Returns the previously installed pool.
ThreadPool* SetCurrentThreadPool(ThreadPool* pool);
ThreadPool* CurrentThreadPool();

/// CLOCK_THREAD_CPUTIME_ID in microseconds.
int64_t ThreadCpuMicros();

/// Morsel-driven parallel loop over [begin, end). Uses the thread's current
/// pool when one is installed and the range spans several morsels; falls
/// back to running the same morsel sequence inline otherwise (including
/// when already inside a morsel — nested calls serialize, which keeps the
/// decomposition identical and cannot deadlock). CPU time is charged to the
/// innermost ParallelCpuScope of the thread that entered the loop.
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const MorselFn& fn);

/// Number of morsels ParallelFor will use for this range.
inline int64_t NumMorsels(int64_t begin, int64_t end, int64_t grain) {
  if (end <= begin) return 0;
  if (grain < 1) grain = 1;
  return (end - begin + grain - 1) / grain;
}

/// A grain that caps a range at `max_morsels` pieces (but never below
/// `min_grain` rows). Aggregation kernels use this so per-morsel partial
/// buffers stay bounded while the decomposition remains a pure function of
/// the input size.
inline int64_t GrainForMorsels(int64_t n, int64_t min_grain,
                               int64_t max_morsels) {
  int64_t grain = (n + max_morsels - 1) / max_morsels;
  return grain < min_grain ? min_grain : grain;
}

/// Deterministic parallel reduction: maps each morsel to a partial with
/// `map(lo, hi)` and folds the partials in morsel-index order, so
/// floating-point results do not depend on thread count or interleaving.
template <typename T, typename MapFn, typename CombineFn>
T ParallelReduce(int64_t begin, int64_t end, int64_t grain, T identity,
                 const MapFn& map, const CombineFn& combine) {
  const int64_t morsels = NumMorsels(begin, end, grain);
  if (morsels == 0) return identity;
  if (grain < 1) grain = 1;
  std::vector<T> partials(morsels, identity);
  ParallelFor(begin, end, grain, [&](int64_t lo, int64_t hi) {
    partials[(lo - begin) / grain] = map(lo, hi);
  });
  T acc = std::move(identity);
  for (int64_t m = 0; m < morsels; ++m) {
    acc = combine(std::move(acc), std::move(partials[m]));
  }
  return acc;
}

}  // namespace xorbits

#endif  // XORBITS_COMMON_THREAD_POOL_H_
