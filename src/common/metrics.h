#ifndef XORBITS_COMMON_METRICS_H_
#define XORBITS_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace xorbits {

/// Point-in-time copy of one histogram (see Histogram). `counts` has one
/// entry per bucket in `bounds` plus a final overflow bucket.
struct HistogramSnapshot {
  std::string name;
  std::string unit;
  std::vector<int64_t> bounds;
  std::vector<int64_t> counts;
  int64_t count = 0;
  int64_t sum = 0;
  int64_t min = 0;
  int64_t max = 0;
};

/// Fixed-bucket histogram with lock-free observation. Bucket `i` counts
/// values `v <= bounds[i]` (first matching bound); values above the last
/// bound land in the overflow bucket. Bounds are fixed at registration so
/// snapshots from different runs are directly comparable.
class Histogram {
 public:
  Histogram(std::string name, std::string unit, std::vector<int64_t> bounds);

  void Observe(int64_t value);
  HistogramSnapshot Snapshot() const;
  void Reset();

  const std::string& name() const { return name_; }
  const std::string& unit() const { return unit_; }
  int64_t count() const { return count_.load(std::memory_order_relaxed); }

 private:
  const std::string name_;
  const std::string unit_;
  const std::vector<int64_t> bounds_;
  std::unique_ptr<std::atomic<int64_t>[]> counts_;  // bounds_.size() + 1
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> min_{std::numeric_limits<int64_t>::max()};
  std::atomic<int64_t> max_{std::numeric_limits<int64_t>::min()};
};

/// A named point-in-time value (peak band bytes, registry sizes, ...).
class Gauge {
 public:
  Gauge(std::string name, std::string unit)
      : name_(std::move(name)), unit_(std::move(unit)) {}

  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  /// Atomically raises the gauge to at least `v` (peak watermarks).
  void SetMax(int64_t v) {
    int64_t prev = value_.load(std::memory_order_relaxed);
    while (v > prev && !value_.compare_exchange_weak(prev, v)) {
    }
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

  const std::string& name() const { return name_; }
  const std::string& unit() const { return unit_; }

 private:
  const std::string name_;
  const std::string unit_;
  std::atomic<int64_t> value_{0};
};

/// Shared bucket policy: exponential base-4 bounds starting at 16
/// (16, 64, 256, ..., 64Mi — 12 buckets + overflow). One policy for both
/// microsecond and byte histograms keeps every report column comparable;
/// see DESIGN.md §4.
std::vector<int64_t> DefaultBuckets();

/// Named gauge/histogram registry. Registration is idempotent (same name
/// returns the same instance; pointers are stable for the registry's
/// lifetime). Observation paths are lock-free; the registry mutex guards
/// registration and snapshotting, and `Metrics::Snapshot` holds it so a
/// snapshot cannot interleave with new registrations.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Gauge* GetGauge(const std::string& name, const std::string& unit);
  Histogram* GetHistogram(const std::string& name, const std::string& unit,
                          std::vector<int64_t> bounds);

  std::vector<std::pair<std::string, int64_t>> SnapshotGauges() const;
  std::vector<HistogramSnapshot> SnapshotHistograms() const;
  void Reset();

  /// Variants for callers that already hold `mutex()` (Metrics::Snapshot
  /// takes one consistent snapshot of counters + registry under it).
  std::vector<std::pair<std::string, int64_t>> SnapshotGaugesLocked() const;
  std::vector<HistogramSnapshot> SnapshotHistogramsLocked() const;

  std::mutex& mutex() const { return mu_; }

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// A consistent point-in-time copy of every counter, gauge and histogram of
/// one Metrics instance, taken under the registry lock. Safe to read after
/// the owning session is gone (the run report is rendered from this).
struct MetricsSnapshot {
  std::vector<std::pair<std::string, int64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// Value of a legacy counter by name (0 when absent).
  int64_t Counter(const std::string& name) const;
};

/// Counters collected during a run. One instance is owned by each simulated
/// cluster; benches read these to report transfer/spill/OOM behaviour
/// alongside wall-clock time. The embedded `registry` adds named gauges and
/// fixed-bucket histograms on top of the flat counters; take `Snapshot()`
/// instead of reading fields one by one when band workers may still run.
struct Metrics {
  std::atomic<int64_t> subtasks_executed{0};
  std::atomic<int64_t> subtasks_failed{0};
  /// Subtask attempts re-queued after a retryable failure (injected
  /// transient fault, lost band, per-subtask timeout).
  std::atomic<int64_t> subtasks_retried{0};
  /// Chunk nodes recomputed from lineage after their stored payload was
  /// lost (band death, chunk-loss event, missing spill file).
  std::atomic<int64_t> chunks_recovered{0};
  /// Bands permanently removed from scheduling after an injected kill.
  std::atomic<int64_t> bands_blacklisted{0};
  /// Transient faults the injector fired (denominator for retry rates).
  std::atomic<int64_t> faults_injected{0};
  /// Wall time spent inside lineage recovery (recompute of lost chunks).
  std::atomic<int64_t> recovery_us{0};
  std::atomic<int64_t> chunks_stored{0};
  std::atomic<int64_t> bytes_stored{0};
  std::atomic<int64_t> bytes_transferred{0};  // cross-band chunk reads
  std::atomic<int64_t> bytes_spilled{0};
  std::atomic<int64_t> spill_events{0};
  std::atomic<int64_t> oom_events{0};
  std::atomic<int64_t> peak_band_bytes{0};
  std::atomic<int64_t> dynamic_yields{0};   // tile()->execution switches
  /// Modeled cluster time: sum of schedule makespans over all executed
  /// subtask graphs, from per-subtask thread-CPU cost + transfer penalties
  /// with one serial slot per band. This is what benches report — on a
  /// single-core host, wall-clock cannot show parallelism or skew effects.
  std::atomic<int64_t> simulated_us{0};
  /// Total kernel CPU burned by subtasks (band thread + pool threads),
  /// before the division by cpus_per_band that models parallel slots.
  /// Serial and parallel runs of the same graph report comparable values
  /// here — the invariant that keeps the parallel cost model honest.
  std::atomic<int64_t> kernel_cpu_us{0};
  std::atomic<int64_t> fused_subtasks{0};
  std::atomic<int64_t> op_fusion_hits{0};
  std::atomic<int64_t> pruned_columns{0};
  /// Filter predicates the optimizer pushed into parquet/CSV source reads.
  std::atomic<int64_t> predicates_pushed{0};
  /// Duplicate pure chunk nodes deduplicated by common-subexpression
  /// elimination before subtask building.
  std::atomic<int64_t> cse_hits{0};
  /// Tileable nodes dropped from the work list because no sink needs them.
  std::atomic<int64_t> dead_nodes_eliminated{0};
  /// Chunk nodes the late-materialization pass swapped to their late
  /// variant (selection vectors + lazy column decode, DESIGN.md §10).
  std::atomic<int64_t> late_rewrites{0};
  /// Bytes of xparquet column blocks actually read by source kernels; the
  /// denominator predicate pushdown and column pruning shrink.
  std::atomic<int64_t> source_bytes_read{0};
  /// Result-cache probes (DESIGN.md §9). A hit rewrites a whole pending
  /// sub-plan into a fetch of a `cache/` chunk; a miss marks the chunk for
  /// publication when the executor materializes it.
  std::atomic<int64_t> cache_hits{0};
  std::atomic<int64_t> cache_misses{0};
  /// Chunks the executor published into the `cache/` namespace on
  /// successful completion.
  std::atomic<int64_t> cache_publishes{0};
  /// Cache entries dropped LRU to fit result_cache_budget_bytes.
  std::atomic<int64_t> cache_evictions{0};
  /// Cache entries dropped because a source they derive from changed.
  std::atomic<int64_t> cache_invalidations{0};

  /// Named gauges + histograms registered by subsystems; the three
  /// histograms below are pre-registered for the executor and storage.
  MetricsRegistry registry;
  Histogram* subtask_latency_us;  // modeled per-subtask latency (us)
  Histogram* chunk_bytes;         // payload size at each storage Put (bytes)
  Histogram* queue_wait_us;       // modeled inputs-ready -> band-slot wait

  Metrics();

  void Reset();

  /// Atomically raises `peak_band_bytes` to at least `value`.
  void UpdatePeak(int64_t value) {
    int64_t prev = peak_band_bytes.load();
    while (value > prev &&
           !peak_band_bytes.compare_exchange_weak(prev, value)) {
    }
  }

  /// Consistent snapshot of counters + registry, taken under the registry
  /// lock. Reading the fields one by one races band workers that are still
  /// updating them; snapshot once, then read the copy.
  MetricsSnapshot Snapshot() const;

  std::string ToString() const;
};

}  // namespace xorbits

#endif  // XORBITS_COMMON_METRICS_H_
