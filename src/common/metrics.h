#ifndef XORBITS_COMMON_METRICS_H_
#define XORBITS_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace xorbits {

/// Counters collected during a run. One instance is owned by each simulated
/// cluster; benches read these to report transfer/spill/OOM behaviour
/// alongside wall-clock time.
struct Metrics {
  std::atomic<int64_t> subtasks_executed{0};
  std::atomic<int64_t> subtasks_failed{0};
  /// Subtask attempts re-queued after a retryable failure (injected
  /// transient fault, lost band, per-subtask timeout).
  std::atomic<int64_t> subtasks_retried{0};
  /// Chunk nodes recomputed from lineage after their stored payload was
  /// lost (band death, chunk-loss event, missing spill file).
  std::atomic<int64_t> chunks_recovered{0};
  /// Bands permanently removed from scheduling after an injected kill.
  std::atomic<int64_t> bands_blacklisted{0};
  /// Transient faults the injector fired (denominator for retry rates).
  std::atomic<int64_t> faults_injected{0};
  /// Wall time spent inside lineage recovery (recompute of lost chunks).
  std::atomic<int64_t> recovery_us{0};
  std::atomic<int64_t> chunks_stored{0};
  std::atomic<int64_t> bytes_stored{0};
  std::atomic<int64_t> bytes_transferred{0};  // cross-band chunk reads
  std::atomic<int64_t> bytes_spilled{0};
  std::atomic<int64_t> spill_events{0};
  std::atomic<int64_t> oom_events{0};
  std::atomic<int64_t> peak_band_bytes{0};
  std::atomic<int64_t> dynamic_yields{0};   // tile()->execution switches
  /// Modeled cluster time: sum of schedule makespans over all executed
  /// subtask graphs, from per-subtask thread-CPU cost + transfer penalties
  /// with one serial slot per band. This is what benches report — on a
  /// single-core host, wall-clock cannot show parallelism or skew effects.
  std::atomic<int64_t> simulated_us{0};
  /// Total kernel CPU burned by subtasks (band thread + pool threads),
  /// before the division by cpus_per_band that models parallel slots.
  /// Serial and parallel runs of the same graph report comparable values
  /// here — the invariant that keeps the parallel cost model honest.
  std::atomic<int64_t> kernel_cpu_us{0};
  std::atomic<int64_t> fused_subtasks{0};
  std::atomic<int64_t> op_fusion_hits{0};
  std::atomic<int64_t> pruned_columns{0};

  void Reset() {
    subtasks_executed = 0;
    subtasks_failed = 0;
    subtasks_retried = 0;
    chunks_recovered = 0;
    bands_blacklisted = 0;
    faults_injected = 0;
    recovery_us = 0;
    chunks_stored = 0;
    bytes_stored = 0;
    bytes_transferred = 0;
    bytes_spilled = 0;
    spill_events = 0;
    oom_events = 0;
    peak_band_bytes = 0;
    dynamic_yields = 0;
    simulated_us = 0;
    kernel_cpu_us = 0;
    fused_subtasks = 0;
    op_fusion_hits = 0;
    pruned_columns = 0;
  }

  /// Atomically raises `peak_band_bytes` to at least `value`.
  void UpdatePeak(int64_t value) {
    int64_t prev = peak_band_bytes.load();
    while (value > prev &&
           !peak_band_bytes.compare_exchange_weak(prev, value)) {
    }
  }

  std::string ToString() const;
};

}  // namespace xorbits

#endif  // XORBITS_COMMON_METRICS_H_
