#ifndef XORBITS_TILING_AUTO_RECHUNK_H_
#define XORBITS_TILING_AUTO_RECHUNK_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/result.h"

namespace xorbits::tiling {

/// Algorithm 1 of the paper (Auto Rechunk): given a raw array `shape`,
/// per-dimension constraints `dim_to_size` (dimension index -> required
/// chunk extent on that dimension, e.g. {1: n} forces whole rows so QR
/// blocks are tall-and-skinny), the element width `itemsize`, and the
/// configured `max_chunk_size` in bytes, computes chunk extents for every
/// dimension such that each chunk's payload stays within the limit.
///
/// Returns one extent list per dimension; the chunk grid is their cartesian
/// product. E.g. shape (10000, 10000), dim_to_size {1: 10000}, 8-byte items
/// and a 128 MiB limit yields dim 0 -> [1677, 1677, ..., 1615] and
/// dim 1 -> [10000], matching the paper's worked example.
Result<std::vector<std::vector<int64_t>>> AutoRechunk(
    const std::vector<int64_t>& shape,
    const std::map<int, int64_t>& dim_to_size, int64_t itemsize,
    int64_t max_chunk_size);

}  // namespace xorbits::tiling

#endif  // XORBITS_TILING_AUTO_RECHUNK_H_
