#ifndef XORBITS_TILING_TILING_DRIVER_H_
#define XORBITS_TILING_TILING_DRIVER_H_

#include <chrono>
#include <memory>
#include <vector>

#include "common/config.h"
#include "common/metrics.h"
#include "operators/operator.h"
#include "optimizer/pass_manager.h"
#include "scheduler/executor.h"

namespace xorbits::services {
class ResultCache;
}  // namespace xorbits::services

namespace xorbits::tiling {

/// The supervisor-side task service: walks the tileable graph, drives each
/// operator's tile coroutine, and — whenever a coroutine yields — optimizes
/// and executes the pending partial chunk graph, records metadata, and
/// resumes (Fig. 5(a): switching between tiling and execution). When every
/// operator is tiled it executes the sink chunks and exposes their
/// payloads.
class TilingDriver {
 public:
  /// `pass_manager` (optional; owned by the session) supplies the chunk-
  /// and subtask-level optimizer pipelines run on every partial execution.
  /// `executor` (optional) is a shared cluster executor — tenant sessions
  /// under one SessionManager all submit to it, and `run_options` carries
  /// their scheduling identity (session id, priority, in-flight cap,
  /// per-session metrics/trace). When null the driver owns a private
  /// executor, the historical solo behaviour.
  TilingDriver(const Config& config, Metrics* metrics,
               services::StorageService* storage,
               services::MetaService* meta, graph::ChunkGraph* chunk_graph,
               optimizer::PassManager* pass_manager = nullptr,
               scheduler::Executor* executor = nullptr,
               scheduler::RunOptions run_options = {});

  /// Tiles and executes everything needed by `sinks`. `topo_order` is the
  /// full tileable graph order (already-tiled nodes are skipped, so
  /// incremental calls on a growing graph are cheap).
  Status TileAndRun(const std::vector<graph::TileableNode*>& topo_order,
                    const std::vector<graph::TileableNode*>& sinks);

  /// Payloads of a tiled + executed tileable, in chunk order.
  Result<std::vector<services::ChunkDataPtr>> FetchChunks(
      const graph::TileableNode* node);

  /// Attaches the cross-session result cache (DESIGN.md §9): chunk
  /// pipelines start collecting hit pins (released in TileAndRun's
  /// epilogue, success or failure) and the executor publishes stamped
  /// misses. The owning session must also BindResultCache on its
  /// PassManager — the driver only manages the pin lifecycle.
  void BindResultCache(services::ResultCache* cache);

 private:
  /// Executes the pending ancestor closure of `targets` (no-op when all are
  /// executed): op-level fusion, coloring fusion, placement, run.
  Status ExecutePartial(const std::vector<graph::ChunkNode*>& targets);

  const Config& config_;
  Metrics* metrics_;
  services::StorageService* storage_;
  services::MetaService* meta_;
  graph::ChunkGraph* chunk_graph_;
  optimizer::PassManager* pass_manager_;
  /// Fallback pipelines for drivers constructed without a session.
  std::unique_ptr<optimizer::PassManager> owned_pass_manager_;
  /// Private executor for solo drivers; null when sharing the cluster's.
  std::unique_ptr<scheduler::Executor> owned_executor_;
  scheduler::Executor* executor_;
  /// Scheduling identity stamped on every Run this driver submits.
  scheduler::RunOptions run_options_;
  std::chrono::steady_clock::time_point deadline_;
  /// Result cache this driver's runs consume/feed; null when disabled.
  services::ResultCache* result_cache_ = nullptr;
  /// Signatures pinned by cache hits across the current TileAndRun's
  /// partial executions; unpinned in its epilogue on every exit path.
  std::vector<std::string> pinned_sigs_;
};

}  // namespace xorbits::tiling

#endif  // XORBITS_TILING_TILING_DRIVER_H_
