#include "tiling/auto_rechunk.h"

#include <algorithm>
#include <cmath>

namespace xorbits::tiling {

Result<std::vector<std::vector<int64_t>>> AutoRechunk(
    const std::vector<int64_t>& shape,
    const std::map<int, int64_t>& dim_to_size, int64_t itemsize,
    int64_t max_chunk_size) {
  const int ndim = static_cast<int>(shape.size());
  if (ndim == 0) return Status::Invalid("AutoRechunk: empty shape");
  if (itemsize <= 0 || max_chunk_size <= 0) {
    return Status::Invalid("AutoRechunk: bad itemsize/limit");
  }
  for (const auto& [dim, size] : dim_to_size) {
    if (dim < 0 || dim >= ndim) {
      return Status::Invalid("AutoRechunk: constraint on bad dimension");
    }
    if (size <= 0 || size > shape[dim]) {
      return Status::Invalid("AutoRechunk: bad constrained size");
    }
  }

  // Constrained dimensions contribute fixed extents; the remaining budget
  // is spread evenly (geometric mean) over the unconstrained ones.
  std::vector<std::vector<int64_t>> result(ndim);
  std::map<int, int64_t> left_unsplit;
  std::vector<int> left_dims;
  int64_t fixed_items = 1;
  for (int d = 0; d < ndim; ++d) {
    auto it = dim_to_size.find(d);
    if (it != dim_to_size.end()) {
      // Fixed chunk extent on this dim; split the dim into equal pieces.
      for (int64_t off = 0; off < shape[d]; off += it->second) {
        result[d].push_back(std::min(it->second, shape[d] - off));
      }
      fixed_items *= it->second;
    } else {
      left_unsplit[d] = shape[d];
      left_dims.push_back(d);
    }
  }
  if (left_dims.empty()) return result;

  while (true) {
    const double nbytes = static_cast<double>(fixed_items) * itemsize;
    const double divided = std::max(1.0, max_chunk_size / nbytes);
    int remaining = 0;
    for (int d : left_dims) {
      if (left_unsplit[d] > 0) ++remaining;
    }
    if (remaining == 0) break;
    const int64_t cur_size = std::max<int64_t>(
        1, static_cast<int64_t>(std::pow(divided, 1.0 / remaining)));
    bool progressed = false;
    for (int d : left_dims) {
      int64_t& unsplit = left_unsplit[d];
      if (unsplit <= 0) continue;
      const int64_t take = std::min(unsplit, cur_size);
      result[d].push_back(take);
      unsplit -= take;
      progressed = true;
    }
    if (!progressed) break;
  }
  // Degenerate zero-length dims still need one empty chunk extent.
  for (int d = 0; d < ndim; ++d) {
    if (result[d].empty()) result[d].push_back(shape[d]);
  }
  return result;
}

}  // namespace xorbits::tiling
