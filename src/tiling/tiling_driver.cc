#include "tiling/tiling_driver.h"

#include "common/logging.h"
#include "common/trace_names.h"
#include "common/tracing.h"
#include "optimizer/fusion.h"
#include "services/result_cache.h"

namespace xorbits::tiling {

using graph::ChunkNode;
using graph::TileableNode;
using operators::TileableOp;
using operators::TileContext;
using operators::TileTask;

TilingDriver::TilingDriver(const Config& config, Metrics* metrics,
                           services::StorageService* storage,
                           services::MetaService* meta,
                           graph::ChunkGraph* chunk_graph,
                           optimizer::PassManager* pass_manager,
                           scheduler::Executor* executor,
                           scheduler::RunOptions run_options)
    : config_(config),
      metrics_(metrics),
      storage_(storage),
      meta_(meta),
      chunk_graph_(chunk_graph),
      pass_manager_(pass_manager),
      executor_(executor),
      run_options_(run_options) {
  if (pass_manager_ == nullptr) {
    owned_pass_manager_ =
        std::make_unique<optimizer::PassManager>(config_, metrics_);
    pass_manager_ = owned_pass_manager_.get();
  }
  if (executor_ == nullptr) {
    owned_executor_ = std::make_unique<scheduler::Executor>(config_, metrics_,
                                                            storage_, meta_);
    executor_ = owned_executor_.get();
  }
  // Every run this driver submits is attributed to its session's metrics
  // and trace identity (falling back to the session-wide ones).
  if (run_options_.metrics == nullptr) run_options_.metrics = metrics_;
  if (!run_options_.trace.enabled()) run_options_.trace = config_.trace;
}

void TilingDriver::BindResultCache(services::ResultCache* cache) {
  result_cache_ = cache;
  // Solo drivers own their executor, so the session cannot reach it to
  // hook publishing; under a shared cluster executor this re-sets the same
  // pointer the manager already installed.
  executor_->set_result_cache(cache);
}

Status TilingDriver::ExecutePartial(
    const std::vector<ChunkNode*>& targets) {
  std::vector<ChunkNode*> closure = graph::PendingClosure(targets);
  if (closure.empty()) return Status::OK();
  Tracer* tr = config_.trace.sink;
  const int pid = config_.trace.pid;
  TraceSpan partial_span(tr, pid, kTrackSupervisor,
                         trace::kSpanExecutePartial);
  partial_span.AddArg(Arg("pending", static_cast<int64_t>(closure.size())));
  XORBITS_RETURN_NOT_OK(pass_manager_->RunChunkPipeline(
      chunk_graph_, &closure, targets,
      result_cache_ != nullptr ? &pinned_sigs_ : nullptr));
  // The unfused subtask graph is the physical-plan baseline; fusion (and
  // any other subtask rewrites) happen in the subtask pipeline.
  graph::SubtaskGraph st_graph =
      optimizer::BuildUnfusedSubtaskGraph(closure, targets, metrics_);
  XORBITS_RETURN_NOT_OK(
      pass_manager_->RunSubtaskPipeline(&st_graph, closure, targets));
  partial_span.AddArg(
      Arg("subtasks", static_cast<int64_t>(st_graph.subtasks.size())));
  return executor_->Run(&st_graph, deadline_, run_options_);
}

Status TilingDriver::TileAndRun(
    const std::vector<TileableNode*>& topo_order,
    const std::vector<TileableNode*>& sinks) {
  // Epilogue on every exit path: release the cache pins this submission's
  // partial executions took, making those entries evictable again. Runs
  // after the last consuming Run has finished (or failed) — the window the
  // pin exists to cover.
  struct PinRelease {
    TilingDriver* d;
    ~PinRelease() {
      if (d->result_cache_ != nullptr && !d->pinned_sigs_.empty()) {
        d->result_cache_->Unpin(d->pinned_sigs_);
        d->pinned_sigs_.clear();
      }
    }
  } pin_release{this};
  deadline_ = config_.task_deadline_ms > 0
                  ? std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(config_.task_deadline_ms)
                  : std::chrono::steady_clock::time_point::max();
  TileContext tctx(config_, meta_, chunk_graph_, metrics_);
  for (TileableNode* node : topo_order) {
    if (node->tiled) continue;
    if (std::chrono::steady_clock::now() >= deadline_) {
      return Status::Timeout("tiling deadline exceeded");
    }
    auto* op = dynamic_cast<TileableOp*>(node->op.get());
    if (op == nullptr) {
      return Status::Invalid("tileable node without a tileable operator");
    }
    // The tile span stays open across every co_yield suspension of the
    // tile coroutine: it covers the metadata-driven partial executions the
    // operator waited for, in simulated time (see common/tracing.h).
    Tracer* tr = config_.trace.sink;
    TraceSpan tile_span;
    if (tr != nullptr) {
      tile_span = TraceSpan(tr, config_.trace.pid, kTrackTiling,
                            trace::kSpanTilePrefix + std::string(op->type_name()),
                            {});
    }
    int64_t yields = 0;
    TileTask task = op->Tile(tctx, node);
    while (task.Resume()) {
      // The coroutine needs execution metadata: run the partial graph.
      if (tr != nullptr) {
        tr->Instant(config_.trace.pid, kTrackTiling, trace::kEventTileYield,
                    {Arg("op", op->type_name()),
                     Arg("pending_chunks", static_cast<int64_t>(
                                               task.pending().chunks.size()))});
      }
      ++yields;
      XORBITS_RETURN_NOT_OK(
          ExecutePartial(task.pending().chunks)
              .WithContext(std::string("while dynamically tiling ") +
                           op->type_name()));
    }
    tile_span.AddArg(Arg("yields", yields));
    tile_span.AddArg(
        Arg("chunks", static_cast<int64_t>(node->chunks.size())));
    XORBITS_RETURN_NOT_OK(
        task.result().WithContext(std::string("tiling ") + op->type_name()));
    if (!node->tiled) {
      return Status::ExecutionError(std::string(op->type_name()) +
                                    " finished tile() without tiling");
    }
  }
  // Materialize the sinks.
  std::vector<ChunkNode*> targets;
  for (TileableNode* sink : sinks) {
    for (ChunkNode* c : sink->chunks) targets.push_back(c);
  }
  return ExecutePartial(targets);
}

Result<std::vector<services::ChunkDataPtr>> TilingDriver::FetchChunks(
    const TileableNode* node) {
  if (!node->tiled) return Status::Invalid("fetch of untiled tileable");
  if (Tracer* tr = config_.trace.sink) {
    tr->Instant(config_.trace.pid, kTrackSupervisor, trace::kEventFetch,
                {Arg("chunks", static_cast<int64_t>(node->chunks.size()))});
  }
  std::vector<services::ChunkDataPtr> out;
  out.reserve(node->chunks.size());
  for (const ChunkNode* c : node->chunks) {
    // A result chunk may have gone down with a band after it was computed;
    // rebuild it from lineage instead of leaking kChunkLost to the user.
    XORBITS_RETURN_NOT_OK(executor_->EnsureChunkAvailable(c->key));
    XORBITS_ASSIGN_OR_RETURN(services::ChunkDataPtr data,
                             storage_->Get(c->key, /*requesting_band=*/-1));
    out.push_back(std::move(data));
  }
  return out;
}

}  // namespace xorbits::tiling
