#include "tiling/tiling_driver.h"

#include "common/logging.h"
#include "optimizer/fusion.h"
#include "optimizer/op_fusion.h"

namespace xorbits::tiling {

using graph::ChunkNode;
using graph::TileableNode;
using operators::TileableOp;
using operators::TileContext;
using operators::TileTask;

TilingDriver::TilingDriver(const Config& config, Metrics* metrics,
                           services::StorageService* storage,
                           services::MetaService* meta,
                           graph::ChunkGraph* chunk_graph)
    : config_(config),
      metrics_(metrics),
      storage_(storage),
      meta_(meta),
      chunk_graph_(chunk_graph),
      executor_(config, metrics, storage, meta) {}

Status TilingDriver::ExecutePartial(
    const std::vector<ChunkNode*>& targets) {
  std::vector<ChunkNode*> closure = graph::PendingClosure(targets);
  if (closure.empty()) return Status::OK();
  if (config_.op_fusion) {
    closure = optimizer::FuseElementwiseChains(std::move(closure), metrics_);
  }
  graph::SubtaskGraph st_graph = optimizer::BuildSubtaskGraph(
      closure, targets, config_.graph_fusion, metrics_);
  return executor_.Run(&st_graph, deadline_);
}

Status TilingDriver::TileAndRun(
    const std::vector<TileableNode*>& topo_order,
    const std::vector<TileableNode*>& sinks) {
  deadline_ = config_.task_deadline_ms > 0
                  ? std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(config_.task_deadline_ms)
                  : std::chrono::steady_clock::time_point::max();
  TileContext tctx(config_, meta_, chunk_graph_, metrics_);
  for (TileableNode* node : topo_order) {
    if (node->tiled) continue;
    if (std::chrono::steady_clock::now() >= deadline_) {
      return Status::Timeout("tiling deadline exceeded");
    }
    auto* op = dynamic_cast<TileableOp*>(node->op.get());
    if (op == nullptr) {
      return Status::Invalid("tileable node without a tileable operator");
    }
    TileTask task = op->Tile(tctx, node);
    while (task.Resume()) {
      // The coroutine needs execution metadata: run the partial graph.
      XORBITS_RETURN_NOT_OK(
          ExecutePartial(task.pending().chunks)
              .WithContext(std::string("while dynamically tiling ") +
                           op->type_name()));
    }
    XORBITS_RETURN_NOT_OK(
        task.result().WithContext(std::string("tiling ") + op->type_name()));
    if (!node->tiled) {
      return Status::ExecutionError(std::string(op->type_name()) +
                                    " finished tile() without tiling");
    }
  }
  // Materialize the sinks.
  std::vector<ChunkNode*> targets;
  for (TileableNode* sink : sinks) {
    for (ChunkNode* c : sink->chunks) targets.push_back(c);
  }
  return ExecutePartial(targets);
}

Result<std::vector<services::ChunkDataPtr>> TilingDriver::FetchChunks(
    const TileableNode* node) {
  if (!node->tiled) return Status::Invalid("fetch of untiled tileable");
  std::vector<services::ChunkDataPtr> out;
  out.reserve(node->chunks.size());
  for (const ChunkNode* c : node->chunks) {
    // A result chunk may have gone down with a band after it was computed;
    // rebuild it from lineage instead of leaking kChunkLost to the user.
    XORBITS_RETURN_NOT_OK(executor_.EnsureChunkAvailable(c->key));
    XORBITS_ASSIGN_OR_RETURN(services::ChunkDataPtr data,
                             storage_->Get(c->key, /*requesting_band=*/-1));
    out.push_back(std::move(data));
  }
  return out;
}

}  // namespace xorbits::tiling
