#ifndef XORBITS_OPTIMIZER_PASS_MANAGER_H_
#define XORBITS_OPTIMIZER_PASS_MANAGER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/metrics.h"
#include "common/status.h"
#include "graph/graph.h"
#include "optimizer/pass.h"

namespace xorbits::services {
class MetaService;
class ResultCache;
}  // namespace xorbits::services

namespace xorbits::optimizer {

/// Owns the three per-level pass pipelines and runs them with uniform
/// instrumentation: one `optimize:<pass>` trace span per run, per-pass
/// gauges (`optimizer_pass_us/<slot>` etc., slot = level letter + pipeline
/// index + pass name, e.g. `t1_column_pruning`), and — unless
/// `config.optimizer.verify` is off — a structural invariant check of the
/// rewritten graph after every pass (see graph/rewrite.h), so a buggy pass
/// fails loudly at its own boundary instead of corrupting execution.
///
/// Pipelines come from `config.optimizer`; the `{"auto"}` sentinel derives
/// each level from the legacy `column_pruning` / `op_fusion` /
/// `graph_fusion` toggles (see common/config.h). Unknown pass names fail
/// with Status::Invalid on first use.
class PassManager {
 public:
  PassManager(const Config& config, Metrics* metrics);
  ~PassManager();

  PassManager(const PassManager&) = delete;
  PassManager& operator=(const PassManager&) = delete;

  /// Logical-plan pipeline, run once per Materialize before tiling. May
  /// add nodes to `graph` and rewrite/shrink the `topo` work list.
  Status RunTileablePipeline(graph::TileableGraph* graph,
                             std::vector<graph::TileableNode*>* topo,
                             const std::vector<graph::TileableNode*>& sinks);

  /// Binds the cross-session result cache (DESIGN.md §9) so the
  /// `result_cache` chunk pass can probe and rewrite. `meta` is where hit
  /// metadata/lineage land (the service the consuming run reads);
  /// `session_id` stamps hit lineage (-1 solo). All must outlive the
  /// manager. Without this call the pass is an instrumented no-op.
  void BindResultCache(services::ResultCache* cache,
                       services::MetaService* meta, int64_t session_id);

  /// Chunk-plan pipeline, run on every pending closure (each partial
  /// execution). `must_persist` members survive every pass. When the
  /// result cache is bound, `pinned_sigs` collects the signatures hits
  /// pinned — the caller must ResultCache::Unpin them once the consuming
  /// run is over (null skips probing entirely).
  Status RunChunkPipeline(graph::ChunkGraph* graph,
                          std::vector<graph::ChunkNode*>* closure,
                          const std::vector<graph::ChunkNode*>& must_persist,
                          std::vector<std::string>* pinned_sigs = nullptr);

  /// Physical-plan pipeline, run on the unfused subtask graph built from
  /// `closure` before scheduling.
  Status RunSubtaskPipeline(graph::SubtaskGraph* st_graph,
                            const std::vector<graph::ChunkNode*>& closure,
                            const std::vector<graph::ChunkNode*>& must_persist);

 private:
  Status EnsureInit();

  const Config& config_;
  Metrics* metrics_;
  services::ResultCache* result_cache_ = nullptr;
  services::MetaService* cache_meta_ = nullptr;
  int64_t cache_session_id_ = -1;
  bool initialized_ = false;
  std::vector<std::unique_ptr<TileablePass>> tileable_;
  std::vector<std::unique_ptr<ChunkPass>> chunk_;
  std::vector<std::unique_ptr<SubtaskPass>> subtask_;
};

}  // namespace xorbits::optimizer

#endif  // XORBITS_OPTIMIZER_PASS_MANAGER_H_
