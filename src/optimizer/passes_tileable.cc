#include <algorithm>
#include <map>
#include <set>
#include <unordered_set>

#include "graph/rewrite.h"
#include "operators/dataframe_ops.h"
#include "operators/source_ops.h"
#include "optimizer/column_pruning.h"
#include "optimizer/pass.h"

namespace xorbits::optimizer {

using graph::TileableNode;
using operators::EvalOp;
using operators::ExprPtr;
using operators::ReadCsvOp;
using operators::ReadXpqOp;

namespace {

/// Column pruning, wrapped as a pass (the logic predates the framework and
/// lives in column_pruning.cc).
class ColumnPruningPass : public TileablePass {
 public:
  const char* name() const override { return kPassColumnPruning; }
  Result<PassStats> Run(PassContext& ctx, std::vector<TileableNode*>* topo,
                        const std::vector<TileableNode*>& sinks) override {
    PassStats stats;
    stats.nodes_rewritten = PruneColumns(*topo, sinks);
    return stats;
  }
};

/// True when `node` is a pure filter: an untiled EvalOp with a predicate
/// and neither assignments nor a projection, so bypassing it loses nothing
/// but the row selection — which moves into the source.
const EvalOp* AsPureFilter(const TileableNode* node) {
  if (node->tiled) return nullptr;
  const auto* eval = dynamic_cast<const EvalOp*>(node->op.get());
  if (eval == nullptr || eval->filter() == nullptr) return nullptr;
  if (!eval->assignments().empty() || !eval->projection().empty()) {
    return nullptr;
  }
  return eval;
}

/// Predicate pushdown: for every `source -> filter` pair where the source
/// is an untiled parquet/CSV read consumed only by the filter, a clone of
/// the source carrying the predicate replaces the pair, and the filter's
/// consumers read from the clone. The original nodes are dropped from the
/// work list (the shared source operator is never mutated — other sessions
/// or later-added consumers may still reference it). Filter chains collapse
/// by re-scanning until no rewrite applies: the clone is itself a
/// single-consumer source for the next filter up, and stacked predicates
/// conjoin with And.
class PredicatePushdownPass : public TileablePass {
 public:
  const char* name() const override { return kPassPredicatePushdown; }

  Result<PassStats> Run(PassContext& ctx, std::vector<TileableNode*>* topo,
                        const std::vector<TileableNode*>& sinks) override {
    PassStats stats;
    if (ctx.tileable_graph == nullptr) {
      return Status::Invalid("predicate_pushdown needs a tileable graph");
    }
    std::unordered_set<const TileableNode*> sink_set(sinks.begin(),
                                                     sinks.end());
    bool changed = true;
    while (changed) {
      changed = false;
      // Consumer counts over the whole graph, not just the work list: a
      // node referenced by an already-materialized part of the plan must
      // keep producing its unfiltered output.
      std::map<const TileableNode*, int> consumers;
      for (const auto& n : ctx.tileable_graph->nodes()) {
        for (const TileableNode* in : n->inputs) consumers[in]++;
      }
      for (size_t i = 0; i < topo->size(); ++i) {
        TileableNode* filter_node = (*topo)[i];
        const EvalOp* filter_op = AsPureFilter(filter_node);
        if (filter_op == nullptr || sink_set.count(filter_node)) continue;
        if (filter_node->inputs.size() != 1) continue;
        TileableNode* source = filter_node->inputs[0];
        if (source->tiled || sink_set.count(source)) continue;
        if (consumers[source] != 1) continue;
        std::shared_ptr<graph::OperatorBase> cloned =
            CloneWithFilter(source->op.get(), filter_op->filter());
        if (cloned == nullptr) continue;

        TileableNode* pushed = ctx.tileable_graph->AddNode(
            std::move(cloned), {}, source->output_index);
        pushed->columns = filter_node->columns.empty() ? source->columns
                                                       : filter_node->columns;
        // Rewire every consumer of the filter to the pushed source, then
        // retire the dead pair from the work list: the clone takes the
        // source's slot (its position precedes every consumer), the filter's
        // slot disappears.
        for (const auto& n : ctx.tileable_graph->nodes()) {
          stats.nodes_rewritten +=
              graph::ReplaceInput(n.get(), filter_node, pushed);
        }
        for (size_t j = 0; j < topo->size(); ++j) {
          if ((*topo)[j] == source) (*topo)[j] = pushed;
        }
        topo->erase(std::remove(topo->begin(), topo->end(), filter_node),
                    topo->end());
        stats.nodes_removed += 2;
        if (ctx.metrics != nullptr) ctx.metrics->predicates_pushed++;
        changed = true;
        break;
      }
    }
    return stats;
  }

 private:
  /// Source clone carrying the additional predicate; null when `op` is not
  /// a pushdown-capable source.
  static std::shared_ptr<graph::OperatorBase> CloneWithFilter(
      const graph::OperatorBase* op, const ExprPtr& filter) {
    if (const auto* xpq = dynamic_cast<const ReadXpqOp*>(op)) {
      auto clone = std::make_shared<ReadXpqOp>(xpq->path());
      clone->SetPrunedColumns(xpq->pruned_columns());
      clone->SetPushedFilter(Conjoin(xpq->pushed_filter(), filter));
      return clone;
    }
    if (const auto* csv = dynamic_cast<const ReadCsvOp*>(op)) {
      auto clone = std::make_shared<ReadCsvOp>(csv->path(),
                                               csv->parse_dates());
      clone->SetPushedFilter(Conjoin(csv->pushed_filter(), filter));
      return clone;
    }
    return nullptr;
  }

  static ExprPtr Conjoin(const ExprPtr& existing, const ExprPtr& extra) {
    return existing == nullptr ? extra : operators::AndExpr(existing, extra);
  }
};

/// Dead-node elimination: drops work-list nodes no sink depends on, so
/// abandoned plan branches (built but never fetched) are neither tiled nor
/// executed. Only untiled nodes count toward the metric — already-tiled
/// nodes cost nothing to keep and re-appear in every incremental
/// Materialize over the growing graph.
class DeadNodeElimPass : public TileablePass {
 public:
  const char* name() const override { return kPassDeadNodeElim; }
  Result<PassStats> Run(PassContext& ctx, std::vector<TileableNode*>* topo,
                        const std::vector<TileableNode*>& sinks) override {
    PassStats stats;
    std::unordered_set<const TileableNode*> live(sinks.begin(), sinks.end());
    // topo is topologically ordered, so one reverse sweep closes ancestors.
    for (auto it = topo->rbegin(); it != topo->rend(); ++it) {
      if (!live.count(*it)) continue;
      for (TileableNode* in : (*it)->inputs) live.insert(in);
    }
    std::vector<TileableNode*> kept;
    kept.reserve(topo->size());
    for (TileableNode* n : *topo) {
      if (live.count(n)) {
        kept.push_back(n);
      } else if (!n->tiled) {
        stats.nodes_removed++;
        if (ctx.metrics != nullptr) ctx.metrics->dead_nodes_eliminated++;
      }
    }
    *topo = std::move(kept);
    return stats;
  }
};

}  // namespace

std::unique_ptr<TileablePass> MakeTileablePass(const std::string& name) {
  if (name == kPassColumnPruning) {
    return std::make_unique<ColumnPruningPass>();
  }
  if (name == kPassPredicatePushdown) {
    return std::make_unique<PredicatePushdownPass>();
  }
  if (name == kPassDeadNodeElim) return std::make_unique<DeadNodeElimPass>();
  return nullptr;
}

}  // namespace xorbits::optimizer
