#ifndef XORBITS_OPTIMIZER_OP_FUSION_H_
#define XORBITS_OPTIMIZER_OP_FUSION_H_

#include <unordered_set>
#include <vector>

#include "common/metrics.h"
#include "graph/graph.h"

namespace xorbits::optimizer {

/// Operator-level fusion (§V-A): collapses chains of elementwise Eval chunk
/// operators (a -> b, b the sole consumer of a) into a single fused
/// EvalChunkOp, eliminating materialized intermediates the way numexpr/JAX
/// do. Mutates the pending closure in place and returns the surviving node
/// list (dropped producers are removed). Nodes in `keep` (execution
/// targets whose payloads callers will fetch) are never dropped.
std::vector<graph::ChunkNode*> FuseElementwiseChains(
    std::vector<graph::ChunkNode*> pending, Metrics* metrics,
    const std::unordered_set<const graph::ChunkNode*>* keep = nullptr);

}  // namespace xorbits::optimizer

#endif  // XORBITS_OPTIMIZER_OP_FUSION_H_
