#ifndef XORBITS_OPTIMIZER_OP_FUSION_H_
#define XORBITS_OPTIMIZER_OP_FUSION_H_

#include <vector>

#include "common/metrics.h"
#include "graph/graph.h"

namespace xorbits::optimizer {

/// Operator-level fusion (§V-A): collapses chains of elementwise Eval chunk
/// operators (a -> b, b the sole consumer of a) into a single fused
/// EvalChunkOp, eliminating materialized intermediates the way numexpr/JAX
/// do. Mutates the pending closure in place and returns the surviving node
/// list (dropped producers are removed).
std::vector<graph::ChunkNode*> FuseElementwiseChains(
    std::vector<graph::ChunkNode*> pending, Metrics* metrics);

}  // namespace xorbits::optimizer

#endif  // XORBITS_OPTIMIZER_OP_FUSION_H_
