#include <string>
#include <unordered_map>
#include <unordered_set>

#include "graph/rewrite.h"
#include "operators/operator.h"
#include "optimizer/op_fusion.h"
#include "optimizer/pass.h"

namespace xorbits::optimizer {

using graph::ChunkNode;

namespace {

/// Elementwise-chain fusion, wrapped as a pass. Execution targets
/// (`must_persist`) are protected: fusing one away would leave its fetch
/// key forever unpublished.
class OpFusionPass : public ChunkPass {
 public:
  const char* name() const override { return kPassOpFusion; }
  Result<PassStats> Run(PassContext& ctx, std::vector<ChunkNode*>* closure,
                        const std::vector<ChunkNode*>& must_persist) override {
    PassStats stats;
    const int64_t before = static_cast<int64_t>(closure->size());
    std::unordered_set<const ChunkNode*> keep(must_persist.begin(),
                                              must_persist.end());
    *closure = FuseElementwiseChains(std::move(*closure), ctx.metrics, &keep);
    stats.nodes_removed = before - static_cast<int64_t>(closure->size());
    stats.nodes_rewritten = stats.nodes_removed;  // each merge rewrites one
    return stats;
  }
};

/// Common-subexpression elimination: two pending chunk nodes are duplicates
/// when their operators report equal CseSignatures, they are the same
/// output of their operator, and their (canonicalized) inputs match. The
/// duplicate's consumers are rewired to the first occurrence and the
/// duplicate leaves the closure unexecuted — it stays in the chunk graph,
/// so a later ExecutePartial can still run it if some future operator
/// consumes it directly.
class CsePass : public ChunkPass {
 public:
  const char* name() const override { return kPassCse; }
  Result<PassStats> Run(PassContext& ctx, std::vector<ChunkNode*>* closure,
                        const std::vector<ChunkNode*>& must_persist) override {
    PassStats stats;
    std::unordered_set<const ChunkNode*> persist(must_persist.begin(),
                                                 must_persist.end());
    std::unordered_map<std::string, ChunkNode*> first_seen;
    std::unordered_map<const ChunkNode*, ChunkNode*> canonical;
    std::vector<ChunkNode*> kept;
    kept.reserve(closure->size());
    for (ChunkNode* n : *closure) {
      // Rewire inputs that pointed at an eliminated duplicate.
      for (ChunkNode*& in : n->inputs) {
        auto it = canonical.find(in);
        if (it != canonical.end()) {
          in = it->second;
          stats.nodes_rewritten++;
        }
      }
      auto* op = dynamic_cast<const operators::ChunkOp*>(n->op.get());
      std::optional<std::string> sig =
          op != nullptr ? op->CseSignature() : std::nullopt;
      if (!sig.has_value()) {
        kept.push_back(n);
        continue;
      }
      std::string key = *sig + "#" + std::to_string(n->output_index);
      for (const ChunkNode* in : n->inputs) {
        key += "|";
        key += std::to_string(in->id);
      }
      auto [it, inserted] = first_seen.emplace(std::move(key), n);
      // Fetch targets keep their own storage key; never eliminate them.
      if (inserted || persist.count(n)) {
        kept.push_back(n);
        continue;
      }
      canonical[n] = it->second;
      stats.nodes_removed++;
      if (ctx.metrics != nullptr) ctx.metrics->cse_hits++;
    }
    *closure = std::move(kept);
    return stats;
  }
};

}  // namespace

std::unique_ptr<ChunkPass> MakeChunkPass(const std::string& name) {
  if (name == kPassOpFusion) return std::make_unique<OpFusionPass>();
  if (name == kPassCse) return std::make_unique<CsePass>();
  return nullptr;
}

}  // namespace xorbits::optimizer
