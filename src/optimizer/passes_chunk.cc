#include <algorithm>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "graph/rewrite.h"
#include "operators/operator.h"
#include "optimizer/op_fusion.h"
#include "optimizer/pass.h"
#include "services/meta_service.h"
#include "services/result_cache.h"

namespace xorbits::optimizer {

using graph::ChunkNode;

namespace {

/// Elementwise-chain fusion, wrapped as a pass. Execution targets
/// (`must_persist`) are protected: fusing one away would leave its fetch
/// key forever unpublished.
class OpFusionPass : public ChunkPass {
 public:
  const char* name() const override { return kPassOpFusion; }
  Result<PassStats> Run(PassContext& ctx, std::vector<ChunkNode*>* closure,
                        const std::vector<ChunkNode*>& must_persist) override {
    PassStats stats;
    const int64_t before = static_cast<int64_t>(closure->size());
    std::unordered_set<const ChunkNode*> keep(must_persist.begin(),
                                              must_persist.end());
    *closure = FuseElementwiseChains(std::move(*closure), ctx.metrics, &keep);
    stats.nodes_removed = before - static_cast<int64_t>(closure->size());
    stats.nodes_rewritten = stats.nodes_removed;  // each merge rewrites one
    return stats;
  }
};

/// Common-subexpression elimination: two pending chunk nodes are duplicates
/// when their operators report equal CseSignatures, they are the same
/// output of their operator, and their (canonicalized) inputs match. The
/// duplicate's consumers are rewired to the first occurrence and the
/// duplicate leaves the closure unexecuted — it stays in the chunk graph,
/// so a later ExecutePartial can still run it if some future operator
/// consumes it directly.
class CsePass : public ChunkPass {
 public:
  const char* name() const override { return kPassCse; }
  Result<PassStats> Run(PassContext& ctx, std::vector<ChunkNode*>* closure,
                        const std::vector<ChunkNode*>& must_persist) override {
    PassStats stats;
    std::unordered_set<const ChunkNode*> persist(must_persist.begin(),
                                                 must_persist.end());
    std::unordered_map<std::string, ChunkNode*> first_seen;
    std::unordered_map<const ChunkNode*, ChunkNode*> canonical;
    std::vector<ChunkNode*> kept;
    kept.reserve(closure->size());
    for (ChunkNode* n : *closure) {
      // Rewire inputs that pointed at an eliminated duplicate.
      for (ChunkNode*& in : n->inputs) {
        auto it = canonical.find(in);
        if (it != canonical.end()) {
          in = it->second;
          stats.nodes_rewritten++;
        }
      }
      auto* op = dynamic_cast<const operators::ChunkOp*>(n->op.get());
      std::optional<std::string> sig =
          op != nullptr ? op->CseSignature() : std::nullopt;
      if (!sig.has_value()) {
        kept.push_back(n);
        continue;
      }
      std::string key = *sig + "#" + std::to_string(n->output_index);
      for (const ChunkNode* in : n->inputs) {
        key += "|";
        key += std::to_string(in->id);
      }
      auto [it, inserted] = first_seen.emplace(std::move(key), n);
      // Fetch targets keep their own storage key; never eliminate them.
      if (inserted || persist.count(n)) {
        kept.push_back(n);
        continue;
      }
      canonical[n] = it->second;
      stats.nodes_removed++;
      if (ctx.metrics != nullptr) ctx.metrics->cse_hits++;
    }
    *closure = std::move(kept);
    return stats;
  }
};

/// Cross-session result-cache rewrite (DESIGN.md §9). Runs first in the
/// chunk pipeline, on the pre-fusion closure, so signatures are structural
/// and identical however later passes reshape this particular run.
///
/// For every pending node it derives a *transitive* cache signature — the
/// op's CacheSignature hashed together with its inputs' signatures — then
/// sweeps the closure in reverse topological order: a node still needed by
/// an execution target probes the cache, and on a hit is rewritten in place
/// into an already-materialized fetch (executed, keyed "cache/<sig>", meta
/// registered) so the whole ancestor cone falls out of the closure. Misses
/// are stamped with the signature (ChunkNode::cache_plan_sig) and source
/// tags; the executor publishes their payloads on completion.
///
/// Hits also (re-)register lineage for the cached key against *this*
/// session's live graph, captured before the rewrite, so a cached chunk
/// lost to chaos recovers by recomputing the sub-plan — and they pin the
/// entry via ctx.pinned_sigs until the driver's epilogue, closing the
/// evict-while-consuming race.
class ResultCachePass : public ChunkPass {
 public:
  const char* name() const override { return kPassResultCache; }
  Result<PassStats> Run(PassContext& ctx, std::vector<ChunkNode*>* closure,
                        const std::vector<ChunkNode*>& must_persist) override {
    PassStats stats;
    services::ResultCache* cache = ctx.result_cache;
    if (cache == nullptr || ctx.meta == nullptr ||
        ctx.pinned_sigs == nullptr) {
      return stats;
    }

    // Memoized transitive signatures + source tags, computed over the
    // closure *and* its executed ancestors (partial-tiling rounds may have
    // run the upstream cone already; its structure still names these bytes).
    struct NodeSig {
      std::optional<std::string> sig;
      std::vector<std::string> tags;
    };
    std::unordered_map<const ChunkNode*, NodeSig> memo;
    auto sig_of = [&](auto&& self, ChunkNode* n) -> const NodeSig& {
      auto it = memo.find(n);
      if (it != memo.end()) return it->second;
      NodeSig out;
      const auto* op = dynamic_cast<const operators::ChunkOp*>(n->op.get());
      std::optional<std::string> own =
          op != nullptr ? op->CacheSignature() : std::nullopt;
      if (own.has_value()) {
        std::string acc = *own + "#" + std::to_string(n->output_index);
        bool complete = true;
        for (ChunkNode* in : n->inputs) {
          const NodeSig& s = self(self, in);
          if (!s.sig.has_value()) {
            complete = false;
            break;
          }
          acc += "|" + *s.sig;
          for (const std::string& t : s.tags) {
            if (std::find(out.tags.begin(), out.tags.end(), t) ==
                out.tags.end()) {
              out.tags.push_back(t);
            }
          }
        }
        if (complete) {
          out.sig = services::ResultCache::HashHex(acc);
          if (op != nullptr) {
            if (auto tag = op->CacheSourceTag(); tag.has_value()) {
              out.tags.push_back(std::move(*tag));
            }
          }
        } else {
          out.tags.clear();
        }
      }
      return memo.emplace(n, std::move(out)).first->second;
    };

    std::unordered_set<const ChunkNode*> in_closure(closure->begin(),
                                                    closure->end());
    std::unordered_map<const ChunkNode*, std::vector<ChunkNode*>> consumers;
    for (ChunkNode* n : *closure) {
      for (ChunkNode* in : n->inputs) {
        if (in_closure.count(in)) consumers[in].push_back(n);
      }
    }
    std::unordered_set<const ChunkNode*> persist(must_persist.begin(),
                                                 must_persist.end());
    // Nodes leaving the closure: rewritten cache hits, and ancestors no
    // surviving node needs anymore.
    std::unordered_set<const ChunkNode*> gone;

    // Reverse-topo need sweep: consumers are decided before producers, so
    // a hit prunes its whole ancestor cone in one sweep.
    for (auto rit = closure->rbegin(); rit != closure->rend(); ++rit) {
      ChunkNode* n = *rit;
      bool needed = persist.count(n) != 0;
      if (!needed) {
        auto cit = consumers.find(n);
        if (cit != consumers.end()) {
          for (const ChunkNode* c : cit->second) {
            if (!gone.count(c)) {
              needed = true;
              break;
            }
          }
        }
      }
      if (!needed) {
        gone.insert(n);
        stats.nodes_removed++;
        continue;
      }
      const auto* op = dynamic_cast<const operators::ChunkOp*>(n->op.get());
      // Shuffle mappers publish multi-partition payloads that cannot live
      // under one cache key; they (and everything downstream of an op
      // without a CacheSignature) stay plain execution.
      if (op == nullptr || op->is_shuffle_map()) continue;
      const NodeSig& s = sig_of(sig_of, n);
      if (!s.sig.has_value()) continue;
      auto hit = cache->LookupAndPin(*s.sig);
      if (!hit.has_value()) {
        n->cache_plan_sig = *s.sig;
        n->cache_tags = s.tags;
        continue;
      }
      ctx.pinned_sigs->push_back(*s.sig);
      // Lineage against this session's live graph, captured *before* the
      // rewrite: outputs = {n} keyed by the cache key, so recovering a
      // lost cached chunk re-runs the producing cone and republishes the
      // exact bytes under "cache/<sig>".
      services::ChunkLineage lineage;
      lineage.nodes = graph::PendingClosure({n});
      lineage.outputs = {n};
      lineage.session = ctx.session_id;
      {
        std::unordered_set<const ChunkNode*> group(lineage.nodes.begin(),
                                                   lineage.nodes.end());
        for (const ChunkNode* g : lineage.nodes) {
          for (ChunkNode* in : g->inputs) {
            if (!group.count(in)) lineage.input_keys.push_back(in->key);
          }
        }
      }
      lineage.output_keys = {hit->key};
      // Rewrite: the node *is* the cached chunk now.
      n->key = hit->key;
      n->executed = true;
      n->band = hit->meta.band;
      n->meta.rows = hit->meta.rows;
      n->meta.cols = hit->meta.cols;
      n->meta.nbytes = hit->meta.nbytes;
      n->meta.rows_exact = true;
      ctx.meta->Put(hit->key, hit->meta);
      ctx.meta->PutLineage(hit->key, lineage);
      gone.insert(n);
      stats.nodes_removed++;
      stats.nodes_rewritten++;
    }

    if (!gone.empty()) {
      std::vector<ChunkNode*> kept;
      kept.reserve(closure->size() - gone.size());
      for (ChunkNode* n : *closure) {
        if (!gone.count(n)) kept.push_back(n);
      }
      *closure = std::move(kept);
    }
    return stats;
  }
};

/// Late-materialization rewrite (DESIGN.md §10): swaps chunk ops that offer
/// a late variant (WithLateMaterialization) so filters flow selection
/// vectors and payload columns decode lazily. Runs last in the chunk
/// pipeline, on the post-fusion closure, so fused Eval chains get one late
/// kernel.
///
/// The decision is per node: deferral pays off unless *every* in-closure
/// consumer forces dense input anyway (sort, concat, shuffle partition,
/// file write — see ChunkOp::ForcesDenseInput), in which case the eager
/// kernel is kept and the compaction happens where it always did. A node
/// with no in-closure consumer is an execution target whose payload crosses
/// the serialize/fetch boundary; those force density themselves (and meter
/// it as `selections_forced`), so the rewrite still applies and every byte
/// skipped between filter and fetch is saved.
class LateMaterializationPass : public ChunkPass {
 public:
  const char* name() const override { return kPassLateMaterialization; }
  Result<PassStats> Run(PassContext& ctx, std::vector<ChunkNode*>* closure,
                        const std::vector<ChunkNode*>& must_persist) override {
    (void)must_persist;
    PassStats stats;
    std::unordered_set<const ChunkNode*> in_set(closure->begin(),
                                                closure->end());
    // Consumers of each pending node, within this closure.
    std::unordered_map<const ChunkNode*, std::vector<const ChunkNode*>>
        consumers;
    for (const ChunkNode* n : *closure) {
      for (const ChunkNode* in : n->inputs) {
        if (in_set.count(in)) consumers[in].push_back(n);
      }
    }
    for (ChunkNode* n : *closure) {
      auto* op = dynamic_cast<const operators::ChunkOp*>(n->op.get());
      if (op == nullptr) continue;
      std::shared_ptr<operators::ChunkOp> late = op->WithLateMaterialization();
      if (late == nullptr) continue;
      const auto it = consumers.find(n);
      if (it != consumers.end()) {
        bool all_dense = true;
        for (const ChunkNode* c : it->second) {
          auto* cop = dynamic_cast<const operators::ChunkOp*>(c->op.get());
          if (cop == nullptr || !cop->ForcesDenseInput()) {
            all_dense = false;
            break;
          }
        }
        if (all_dense) continue;
      }
      n->op = std::move(late);
      stats.nodes_rewritten++;
      if (ctx.metrics != nullptr) ctx.metrics->late_rewrites++;
    }
    return stats;
  }
};

}  // namespace

std::unique_ptr<ChunkPass> MakeChunkPass(const std::string& name) {
  if (name == kPassOpFusion) return std::make_unique<OpFusionPass>();
  if (name == kPassCse) return std::make_unique<CsePass>();
  if (name == kPassResultCache) return std::make_unique<ResultCachePass>();
  if (name == kPassLateMaterialization) {
    return std::make_unique<LateMaterializationPass>();
  }
  return nullptr;
}

}  // namespace xorbits::optimizer
