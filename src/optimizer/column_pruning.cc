#include "optimizer/column_pruning.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <unordered_set>

#include "operators/source_ops.h"

namespace xorbits::optimizer {

using graph::TileableNode;

namespace {

struct Requirement {
  std::set<std::string> columns;
  bool need_all = false;
};

}  // namespace

int PruneColumns(const std::vector<TileableNode*>& topo_order,
                 const std::vector<TileableNode*>& sinks) {
  int rewritten = 0;
  std::map<const TileableNode*, Requirement> required;
  // Sinks need their entire schema (the user sees all of it) — expressed as
  // the sink's column list so the requirement can still narrow through
  // projections upstream. Schema-less sinks (tensors) stay conservative.
  for (const TileableNode* s : sinks) {
    if (s->columns.empty()) {
      required[s].need_all = true;
    } else {
      required[s].columns.insert(s->columns.begin(), s->columns.end());
    }
  }

  for (auto it = topo_order.rbegin(); it != topo_order.rend(); ++it) {
    TileableNode* node = *it;
    Requirement& req = required[node];  // default empty if never consumed
    auto* op = dynamic_cast<operators::TileableOp*>(node->op.get());
    if (op == nullptr) continue;

    std::optional<std::vector<std::set<std::string>>> input_needs;
    if (!req.need_all) {
      input_needs = op->RequiredInputColumns(*node, req.columns);
    }
    if (!input_needs.has_value()) {
      // Conservative: inputs must deliver everything they have.
      for (TileableNode* in : node->inputs) required[in].need_all = true;
    } else {
      for (size_t i = 0; i < node->inputs.size() && i < input_needs->size();
           ++i) {
        Requirement& in_req = required[node->inputs[i]];
        for (const auto& c : (*input_needs)[i]) in_req.columns.insert(c);
      }
    }

    // Install pruning on parquet sources. Deferred evaluation means a
    // source may already be tiled under an earlier (narrower) requirement;
    // Xorbits re-plans reads per execution, which here means widening the
    // column set and re-tiling the source.
    auto* read = dynamic_cast<operators::ReadXpqOp*>(node->op.get());
    if (read == nullptr || node->columns.empty()) continue;

    std::set<std::string> needed;
    if (req.need_all) {
      needed.insert(node->columns.begin(), node->columns.end());
    } else {
      for (const auto& c : node->columns) {
        if (req.columns.count(c)) needed.insert(c);
      }
      if (needed.empty()) {
        // Consumed for row counts only; keep one column to stay well-formed.
        needed.insert(node->columns.front());
      }
    }
    const std::vector<std::string>& pruned = read->pruned_columns();
    std::set<std::string> current(pruned.begin(), pruned.end());
    if (pruned.empty()) {
      current.insert(node->columns.begin(), node->columns.end());
    }
    const bool covered = std::includes(current.begin(), current.end(),
                                       needed.begin(), needed.end());
    if (!node->tiled) {
      // First plan for this source: read exactly what is needed.
      if (needed.size() < node->columns.size()) {
        std::vector<std::string> keep;
        for (const auto& c : node->columns) {
          if (needed.count(c)) keep.push_back(c);
        }
        if (keep != read->pruned_columns()) ++rewritten;
        read->SetPrunedColumns(std::move(keep));
      } else {
        if (!read->pruned_columns().empty()) ++rewritten;
        read->SetPrunedColumns({});
      }
    } else if (!covered) {
      // Widen and re-tile (new chunks; already-executed consumers of the
      // old, narrower chunks are unaffected).
      std::set<std::string> widened = current;
      widened.insert(needed.begin(), needed.end());
      if (widened.size() < node->columns.size()) {
        std::vector<std::string> keep;
        for (const auto& c : node->columns) {
          if (widened.count(c)) keep.push_back(c);
        }
        read->SetPrunedColumns(std::move(keep));
      } else {
        read->SetPrunedColumns({});
      }
      ++rewritten;
      node->tiled = false;
      node->chunks.clear();
    }
  }

  // Forward pass: anything tiled on top of a re-tiled source must re-tile
  // as well (its chunk lists point at the old, narrower chunks). Executed
  // chunks of the old plan stay valid for their own consumers.
  std::unordered_set<const TileableNode*> invalidated;
  for (TileableNode* node : topo_order) {
    if (!node->tiled) {
      if (node->op != nullptr &&
          dynamic_cast<operators::ReadXpqOp*>(node->op.get()) != nullptr) {
        invalidated.insert(node);
      }
      continue;
    }
    for (TileableNode* in : node->inputs) {
      if (invalidated.count(in) || !in->tiled) {
        node->tiled = false;
        node->chunks.clear();
        invalidated.insert(node);
        break;
      }
    }
  }
  return rewritten;
}

}  // namespace xorbits::optimizer
