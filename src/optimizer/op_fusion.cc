#include "optimizer/op_fusion.h"

#include <unordered_map>
#include <unordered_set>

#include "operators/dataframe_ops.h"

namespace xorbits::optimizer {

using graph::ChunkNode;
using operators::Assignment;
using operators::EvalChunkOp;

namespace {

/// Merges two consecutive Eval kernels when semantics allow: the upstream
/// op must not project (its full output feeds downstream), and either it
/// has no filter, or the downstream op only filters.
std::shared_ptr<EvalChunkOp> TryMerge(const EvalChunkOp& up,
                                      const EvalChunkOp& down) {
  if (!up.projection().empty()) return nullptr;
  if (up.filter() == nullptr) {
    std::vector<Assignment> assignments = up.assignments();
    // Downstream expressions may reference upstream-assigned columns; the
    // sequential application inside one fused kernel preserves that.
    for (const auto& a : down.assignments()) assignments.push_back(a);
    return std::make_shared<EvalChunkOp>(std::move(assignments),
                                         down.filter(), down.projection());
  }
  // Upstream filters: only a pure downstream filter can be appended
  // (conjunction evaluated against the filtered rows is equivalent to
  // evaluating both against the original rows when no assignment follows).
  if (down.assignments().empty() && down.filter() != nullptr &&
      down.projection().empty()) {
    return std::make_shared<EvalChunkOp>(
        up.assignments(),
        operators::AndExpr(up.filter(), down.filter()), up.projection());
  }
  return nullptr;
}

}  // namespace

std::vector<ChunkNode*> FuseElementwiseChains(
    std::vector<ChunkNode*> pending, Metrics* metrics,
    const std::unordered_set<const ChunkNode*>* keep) {
  // Count in-closure consumers of each node.
  std::unordered_map<const ChunkNode*, int> consumers;
  std::unordered_set<const ChunkNode*> in_set(pending.begin(), pending.end());
  for (ChunkNode* n : pending) {
    for (ChunkNode* in : n->inputs) {
      if (in_set.count(in)) consumers[in]++;
    }
  }
  std::unordered_set<const ChunkNode*> dropped;
  bool changed = true;
  while (changed) {
    changed = false;
    for (ChunkNode* n : pending) {
      if (dropped.count(n)) continue;
      if (n->inputs.size() != 1) continue;
      ChunkNode* in = n->inputs[0];
      if (dropped.count(in) || !in_set.count(in) || in->executed) continue;
      if (consumers[in] != 1) continue;
      // Never swallow a node whose payload the caller will fetch.
      if (keep != nullptr && keep->count(in)) continue;
      auto* down = dynamic_cast<const EvalChunkOp*>(n->op.get());
      auto* up = dynamic_cast<const EvalChunkOp*>(in->op.get());
      if (down == nullptr || up == nullptr) continue;
      std::shared_ptr<EvalChunkOp> fused = TryMerge(*up, *down);
      if (!fused) continue;
      n->op = fused;
      n->inputs = in->inputs;
      dropped.insert(in);
      for (ChunkNode* grand : n->inputs) {
        if (in_set.count(grand)) consumers[grand]++;  // rewired consumer
      }
      if (metrics != nullptr) metrics->op_fusion_hits++;
      changed = true;
    }
  }
  std::vector<ChunkNode*> out;
  out.reserve(pending.size());
  for (ChunkNode* n : pending) {
    if (!dropped.count(n)) out.push_back(n);
  }
  return out;
}

}  // namespace xorbits::optimizer
