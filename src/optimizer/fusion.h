#ifndef XORBITS_OPTIMIZER_FUSION_H_
#define XORBITS_OPTIMIZER_FUSION_H_

#include <vector>

#include "common/metrics.h"
#include "graph/graph.h"

namespace xorbits::optimizer {

/// Converts a pending chunk-node closure (topologically ordered) into a
/// subtask graph. With `enable_fusion`, nodes are grouped by the paper's
/// coloring algorithm (§V-A); otherwise every execution unit becomes its
/// own subtask. Nodes in `must_persist` are always published to storage;
/// additionally each subtask's tail nodes persist (they may be consumed by
/// operators tiled later).
graph::SubtaskGraph BuildSubtaskGraph(
    const std::vector<graph::ChunkNode*>& pending,
    const std::vector<graph::ChunkNode*>& must_persist, bool enable_fusion,
    Metrics* metrics);

/// One execution unit per subtask — the pre-fusion physical plan the
/// subtask-level pass pipeline (GraphFusionPass) starts from. Sibling
/// chunk nodes of one multi-output operator still share a subtask.
graph::SubtaskGraph BuildUnfusedSubtaskGraph(
    const std::vector<graph::ChunkNode*>& pending,
    const std::vector<graph::ChunkNode*>& must_persist, Metrics* metrics);

}  // namespace xorbits::optimizer

#endif  // XORBITS_OPTIMIZER_FUSION_H_
