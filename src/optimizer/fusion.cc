#include "optimizer/fusion.h"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "graph/coloring.h"
#include "optimizer/pass.h"

namespace xorbits::optimizer {

using graph::ChunkNode;
using graph::Subtask;
using graph::SubtaskGraph;

namespace {

SubtaskGraph BuildImpl(const std::vector<ChunkNode*>& pending,
                       const std::vector<ChunkNode*>& must_persist,
                       bool enable_fusion) {
  SubtaskGraph out;
  if (pending.empty()) return out;

  // Execution units: sibling nodes (same op instance, same inputs — the two
  // outputs of one QR call) must share a subtask, so coloring runs on units.
  std::unordered_map<const ChunkNode*, int> unit_of;
  std::vector<std::vector<ChunkNode*>> unit_nodes;
  {
    std::unordered_map<std::string, int> unit_index;
    for (ChunkNode* n : pending) {
      std::string sig =
          std::to_string(reinterpret_cast<uintptr_t>(n->op.get()));
      for (const ChunkNode* in : n->inputs) {
        sig += '|';
        sig += std::to_string(in->id);
      }
      auto [it, inserted] =
          unit_index.emplace(sig, static_cast<int>(unit_nodes.size()));
      if (inserted) unit_nodes.emplace_back();
      unit_nodes[it->second].push_back(n);
      unit_of[n] = it->second;
    }
  }
  const int num_units = static_cast<int>(unit_nodes.size());

  // Unit-level DAG (pending edges only; executed ancestors are data, not
  // dependencies).
  std::unordered_set<const ChunkNode*> pending_set(pending.begin(),
                                                   pending.end());
  std::vector<std::vector<int>> succ(num_units);
  std::vector<std::set<int>> succ_sets(num_units);
  std::vector<bool> fusible(num_units, true);
  for (ChunkNode* n : pending) {
    const int u = unit_of[n];
    if (!n->op->fusible()) fusible[u] = false;
    for (ChunkNode* in : n->inputs) {
      if (!pending_set.count(in)) continue;
      const int p = unit_of[in];
      if (p != u && succ_sets[p].insert(u).second) succ[p].push_back(u);
    }
  }

  std::vector<int> color;
  if (enable_fusion) {
    color = graph::ColorForFusion(succ, fusible);
  } else {
    color.resize(num_units);
    for (int i = 0; i < num_units; ++i) color[i] = i;
  }

  // Group units by color in first-appearance (topological) order.
  std::unordered_map<int, int> subtask_of_color;
  for (int u = 0; u < num_units; ++u) {
    auto [it, inserted] = subtask_of_color.emplace(
        color[u], static_cast<int>(out.subtasks.size()));
    if (inserted) {
      Subtask st;
      st.id = it->second;
      out.subtasks.push_back(std::move(st));
    }
    for (ChunkNode* n : unit_nodes[u]) {
      out.subtasks[it->second].chunk_nodes.push_back(n);
    }
  }
  // Keep each subtask's members in global topological order.
  {
    std::unordered_map<const ChunkNode*, int> order;
    for (size_t i = 0; i < pending.size(); ++i) {
      order[pending[i]] = static_cast<int>(i);
    }
    for (Subtask& st : out.subtasks) {
      std::sort(st.chunk_nodes.begin(), st.chunk_nodes.end(),
                [&](const ChunkNode* a, const ChunkNode* b) {
                  return order[a] < order[b];
                });
    }
  }

  // Wire external inputs, persisted outputs, and subtask edges.
  std::unordered_map<const ChunkNode*, int> subtask_of_node;
  for (const Subtask& st : out.subtasks) {
    for (const ChunkNode* n : st.chunk_nodes) subtask_of_node[n] = st.id;
  }
  std::unordered_set<const ChunkNode*> persist_set(must_persist.begin(),
                                                   must_persist.end());
  std::vector<std::set<int>> pred_sets(out.subtasks.size());
  for (Subtask& st : out.subtasks) {
    std::set<const ChunkNode*> ext;
    std::unordered_set<const ChunkNode*> consumed_internally;
    for (ChunkNode* n : st.chunk_nodes) {
      for (ChunkNode* in : n->inputs) {
        auto it = subtask_of_node.find(in);
        if (it == subtask_of_node.end() || it->second != st.id) {
          ext.insert(in);
          if (it != subtask_of_node.end()) pred_sets[st.id].insert(it->second);
        } else {
          consumed_internally.insert(in);
        }
      }
    }
    for (const ChunkNode* n : ext) {
      st.external_inputs.push_back(const_cast<ChunkNode*>(n));
    }
    for (ChunkNode* n : st.chunk_nodes) {
      // Persist tails (future operators may consume them) and explicitly
      // requested nodes; purely internal intermediates stay transient.
      if (persist_set.count(n) || !consumed_internally.count(n)) {
        st.outputs.push_back(n);
      }
    }
  }
  for (Subtask& st : out.subtasks) {
    for (int p : pred_sets[st.id]) {
      st.preds.push_back(p);
      out.subtasks[p].succs.push_back(st.id);
    }
  }
  return out;
}

/// Subtask-level fusion as a pass: rebuilds the subtask graph from the
/// closure with coloring enabled and replaces the unfused plan. The
/// `fused_subtasks` delta it reports composes with the one from
/// BuildUnfusedSubtaskGraph to match the legacy single-shot accounting.
class GraphFusionPass : public SubtaskPass {
 public:
  const char* name() const override { return kPassGraphFusion; }
  Result<PassStats> Run(
      PassContext& ctx, SubtaskGraph* graph,
      const std::vector<ChunkNode*>& closure,
      const std::vector<ChunkNode*>& must_persist) override {
    PassStats stats;
    const int64_t before = static_cast<int64_t>(graph->subtasks.size());
    SubtaskGraph fused = BuildImpl(closure, must_persist, true);
    stats.nodes_removed = before - static_cast<int64_t>(fused.subtasks.size());
    if (ctx.metrics != nullptr) {
      ctx.metrics->fused_subtasks += stats.nodes_removed;
    }
    *graph = std::move(fused);
    return stats;
  }
};

}  // namespace

SubtaskGraph BuildSubtaskGraph(const std::vector<ChunkNode*>& pending,
                               const std::vector<ChunkNode*>& must_persist,
                               bool enable_fusion, Metrics* metrics) {
  SubtaskGraph out = BuildImpl(pending, must_persist, enable_fusion);
  if (metrics != nullptr) {
    metrics->fused_subtasks += static_cast<int64_t>(pending.size()) -
                               static_cast<int64_t>(out.subtasks.size());
  }
  return out;
}

SubtaskGraph BuildUnfusedSubtaskGraph(
    const std::vector<ChunkNode*>& pending,
    const std::vector<ChunkNode*>& must_persist, Metrics* metrics) {
  SubtaskGraph out = BuildImpl(pending, must_persist, false);
  // Siblings of multi-output operators already share a subtask here; the
  // delta below plus GraphFusionPass's delta equals what the one-shot
  // BuildSubtaskGraph used to report.
  if (metrics != nullptr) {
    metrics->fused_subtasks += static_cast<int64_t>(pending.size()) -
                               static_cast<int64_t>(out.subtasks.size());
  }
  return out;
}

std::unique_ptr<SubtaskPass> MakeSubtaskPass(const std::string& name) {
  if (name == kPassGraphFusion) return std::make_unique<GraphFusionPass>();
  return nullptr;
}

}  // namespace xorbits::optimizer
