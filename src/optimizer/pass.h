#ifndef XORBITS_OPTIMIZER_PASS_H_
#define XORBITS_OPTIMIZER_PASS_H_

#include <memory>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/metrics.h"
#include "common/result.h"
#include "graph/graph.h"

namespace xorbits::services {
class MetaService;
class ResultCache;
}  // namespace xorbits::services

namespace xorbits::optimizer {

/// What one pass did to its graph, reported to the pass manager for the
/// per-pass gauges and the run-report optimizer section.
struct PassStats {
  /// Nodes dropped from the work list / closure (dead nodes, fused-away
  /// producers, CSE duplicates, subtasks merged by coloring).
  int64_t nodes_removed = 0;
  /// Nodes whose operator or wiring changed in place (pruned sources,
  /// rewired consumers, fused survivors).
  int64_t nodes_rewritten = 0;
};

/// Shared state every pass runs against. Graph pointers are level-specific:
/// tileable passes may add nodes to `tileable_graph` (predicate pushdown
/// clones sources instead of mutating shared operators); chunk passes may
/// add to `chunk_graph`.
struct PassContext {
  const Config* config = nullptr;
  Metrics* metrics = nullptr;
  graph::TileableGraph* tileable_graph = nullptr;
  graph::ChunkGraph* chunk_graph = nullptr;
  /// Cross-session result cache (DESIGN.md §9); null unless the owning
  /// PassManager was bound to one (enable_result_cache). The result_cache
  /// chunk pass probes it and rewrites hits into fetches of cached chunks.
  services::ResultCache* result_cache = nullptr;
  /// Meta service the consuming run reads chunk metadata from; a cache hit
  /// registers the cached chunk's meta (and recovery lineage) here.
  services::MetaService* meta = nullptr;
  /// Session the rewritten plan belongs to (-1 solo); stamps hit lineage so
  /// session close can purge pointers into the closing graph arena.
  int64_t session_id = -1;
  /// Out-param: signatures pinned by cache hits this pipeline run. The
  /// driver unpins them in its epilogue; null disables probing (publish
  /// marking still happens).
  std::vector<std::string>* pinned_sigs = nullptr;
};

/// Logical-plan pass: rewrites the tileable work list before tiling.
/// `topo` is the mutable topologically-ordered work list (inputs precede
/// consumers); `sinks` are the user-visible targets a pass must preserve.
class TileablePass {
 public:
  virtual ~TileablePass() = default;
  virtual const char* name() const = 0;
  virtual Result<PassStats> Run(
      PassContext& ctx, std::vector<graph::TileableNode*>* topo,
      const std::vector<graph::TileableNode*>& sinks) = 0;
};

/// Chunk-plan pass: rewrites one pending closure (topologically ordered,
/// nothing executed) before subtask building. Nodes in `must_persist` are
/// execution targets and must survive with their payloads published.
class ChunkPass {
 public:
  virtual ~ChunkPass() = default;
  virtual const char* name() const = 0;
  virtual Result<PassStats> Run(
      PassContext& ctx, std::vector<graph::ChunkNode*>* closure,
      const std::vector<graph::ChunkNode*>& must_persist) = 0;
};

/// Physical-plan pass: rewrites the subtask graph built from `closure`
/// (e.g. coloring fusion regroups execution units into fewer subtasks).
class SubtaskPass {
 public:
  virtual ~SubtaskPass() = default;
  virtual const char* name() const = 0;
  virtual Result<PassStats> Run(
      PassContext& ctx, graph::SubtaskGraph* graph,
      const std::vector<graph::ChunkNode*>& closure,
      const std::vector<graph::ChunkNode*>& must_persist) = 0;
};

// Pass names as spelled in Config::OptimizerSpec pipelines.
inline constexpr char kPassPredicatePushdown[] = "predicate_pushdown";
inline constexpr char kPassColumnPruning[] = "column_pruning";
inline constexpr char kPassDeadNodeElim[] = "dead_node_elim";
inline constexpr char kPassOpFusion[] = "op_fusion";
inline constexpr char kPassCse[] = "cse";
inline constexpr char kPassResultCache[] = "result_cache";
inline constexpr char kPassLateMaterialization[] = "late_materialization";
inline constexpr char kPassGraphFusion[] = "graph_fusion";

/// Factories: one registry per graph level. Return nullptr for names that
/// do not name a pass of that level (the manager turns that into
/// Status::Invalid listing the level).
std::unique_ptr<TileablePass> MakeTileablePass(const std::string& name);
std::unique_ptr<ChunkPass> MakeChunkPass(const std::string& name);
std::unique_ptr<SubtaskPass> MakeSubtaskPass(const std::string& name);

}  // namespace xorbits::optimizer

#endif  // XORBITS_OPTIMIZER_PASS_H_
