#include "optimizer/pass_manager.h"

#include <chrono>

#include "common/trace_names.h"
#include "common/tracing.h"
#include "graph/rewrite.h"

namespace xorbits::optimizer {

namespace {

/// Resolves one level's pipeline: the `{"auto"}` sentinel expands from the
/// legacy toggle, anything else is taken verbatim.
std::vector<std::string> ResolveLevel(const std::vector<std::string>& spec,
                                      bool legacy_enabled,
                                      std::vector<std::string> auto_passes) {
  if (spec.size() == 1 && spec[0] == "auto") {
    if (!legacy_enabled) return {};
    return auto_passes;
  }
  return spec;
}

/// Gauge slot for one pass: level letter + pipeline index + name
/// ("t1_column_pruning"). Stable across runs of the same config, so run
/// reports can list the pipeline in order.
std::string Slot(char level, size_t index, const char* name) {
  return std::string(1, level) + std::to_string(index) + "_" + name;
}

}  // namespace

PassManager::PassManager(const Config& config, Metrics* metrics)
    : config_(config), metrics_(metrics) {}

PassManager::~PassManager() = default;

void PassManager::BindResultCache(services::ResultCache* cache,
                                  services::MetaService* meta,
                                  int64_t session_id) {
  result_cache_ = cache;
  cache_meta_ = meta;
  cache_session_id_ = session_id;
}

Status PassManager::EnsureInit() {
  if (initialized_) return Status::OK();
  const OptimizerSpec& spec = config_.optimizer;
  for (const std::string& name :
       ResolveLevel(spec.tileable, config_.column_pruning,
                    {kPassPredicatePushdown, kPassColumnPruning,
                     kPassDeadNodeElim})) {
    auto pass = MakeTileablePass(name);
    if (pass == nullptr) {
      return Status::Invalid("unknown tileable pass: " + name);
    }
    tileable_.push_back(std::move(pass));
  }
  // Chunk "auto": the result-cache rewrite (when enabled) must see the
  // pre-fusion closure, so it leads; the legacy op_fusion toggle still
  // gates the fusion+CSE tail.
  std::vector<std::string> chunk_auto;
  if (config_.enable_result_cache) chunk_auto.push_back(kPassResultCache);
  if (config_.op_fusion) {
    chunk_auto.push_back(kPassOpFusion);
    chunk_auto.push_back(kPassCse);
  }
  // Late materialization runs last: it rewrites the post-fusion kernels and
  // must see the closure's final consumer wiring to pick forcing points.
  if (config_.late_materialization) {
    chunk_auto.push_back(kPassLateMaterialization);
  }
  const bool chunk_auto_enabled = !chunk_auto.empty();
  for (const std::string& name : ResolveLevel(spec.chunk, chunk_auto_enabled,
                                              std::move(chunk_auto))) {
    auto pass = MakeChunkPass(name);
    if (pass == nullptr) {
      return Status::Invalid("unknown chunk pass: " + name);
    }
    chunk_.push_back(std::move(pass));
  }
  for (const std::string& name : ResolveLevel(
           spec.subtask, config_.graph_fusion, {kPassGraphFusion})) {
    auto pass = MakeSubtaskPass(name);
    if (pass == nullptr) {
      return Status::Invalid("unknown subtask pass: " + name);
    }
    subtask_.push_back(std::move(pass));
  }
  initialized_ = true;
  return Status::OK();
}

namespace {

/// Runs one pass with the shared instrumentation: a trace span, wall time,
/// and the per-slot gauges the run report's optimizer section reads.
template <typename RunFn>
Result<PassStats> Instrumented(const Config& config, Metrics* metrics,
                               char level, size_t index, const char* name,
                               RunFn&& run) {
  Tracer* tr = config.trace.sink;
  TraceSpan span;
  if (tr != nullptr) {
    span = TraceSpan(tr, config.trace.pid, kTrackSupervisor,
                     std::string(trace::kSpanPassPrefix) + name, {});
  }
  const auto start = std::chrono::steady_clock::now();
  Result<PassStats> result = run();
  const int64_t us = std::chrono::duration_cast<std::chrono::microseconds>(
                         std::chrono::steady_clock::now() - start)
                         .count();
  if (!result.ok()) return result;
  span.AddArg(Arg("removed", result->nodes_removed));
  span.AddArg(Arg("rewritten", result->nodes_rewritten));
  if (metrics != nullptr) {
    const std::string slot = Slot(level, index, name);
    metrics->registry
        .GetGauge(std::string(trace::kGaugePassRunsPrefix) + slot, "count")
        ->Add(1);
    metrics->registry
        .GetGauge(std::string(trace::kGaugePassUsPrefix) + slot, "us")
        ->Add(us);
    metrics->registry
        .GetGauge(std::string(trace::kGaugePassRemovedPrefix) + slot, "count")
        ->Add(result->nodes_removed);
    metrics->registry
        .GetGauge(std::string(trace::kGaugePassRewrittenPrefix) + slot,
                  "count")
        ->Add(result->nodes_rewritten);
  }
  return result;
}

}  // namespace

Status PassManager::RunTileablePipeline(
    graph::TileableGraph* graph, std::vector<graph::TileableNode*>* topo,
    const std::vector<graph::TileableNode*>& sinks) {
  XORBITS_RETURN_NOT_OK(EnsureInit());
  PassContext ctx;
  ctx.config = &config_;
  ctx.metrics = metrics_;
  ctx.tileable_graph = graph;
  for (size_t i = 0; i < tileable_.size(); ++i) {
    TileablePass* pass = tileable_[i].get();
    Result<PassStats> r =
        Instrumented(config_, metrics_, 't', i, pass->name(),
                     [&] { return pass->Run(ctx, topo, sinks); });
    if (!r.ok()) {
      return r.status().WithContext(std::string("in tileable pass ") +
                                    pass->name());
    }
    if (config_.optimizer.verify) {
      XORBITS_RETURN_NOT_OK(
          graph::VerifyTileableList(*topo, sinks)
              .WithContext(std::string("after tileable pass ") +
                           pass->name()));
    }
  }
  return Status::OK();
}

Status PassManager::RunChunkPipeline(
    graph::ChunkGraph* graph, std::vector<graph::ChunkNode*>* closure,
    const std::vector<graph::ChunkNode*>& must_persist,
    std::vector<std::string>* pinned_sigs) {
  XORBITS_RETURN_NOT_OK(EnsureInit());
  PassContext ctx;
  ctx.config = &config_;
  ctx.metrics = metrics_;
  ctx.chunk_graph = graph;
  ctx.result_cache = result_cache_;
  ctx.meta = cache_meta_;
  ctx.session_id = cache_session_id_;
  ctx.pinned_sigs = pinned_sigs;
  for (size_t i = 0; i < chunk_.size(); ++i) {
    ChunkPass* pass = chunk_[i].get();
    Result<PassStats> r =
        Instrumented(config_, metrics_, 'c', i, pass->name(),
                     [&] { return pass->Run(ctx, closure, must_persist); });
    if (!r.ok()) {
      return r.status().WithContext(std::string("in chunk pass ") +
                                    pass->name());
    }
    if (config_.optimizer.verify) {
      XORBITS_RETURN_NOT_OK(
          graph::VerifyChunkClosure(*closure, must_persist)
              .WithContext(std::string("after chunk pass ") + pass->name()));
    }
  }
  return Status::OK();
}

Status PassManager::RunSubtaskPipeline(
    graph::SubtaskGraph* st_graph,
    const std::vector<graph::ChunkNode*>& closure,
    const std::vector<graph::ChunkNode*>& must_persist) {
  XORBITS_RETURN_NOT_OK(EnsureInit());
  PassContext ctx;
  ctx.config = &config_;
  ctx.metrics = metrics_;
  for (size_t i = 0; i < subtask_.size(); ++i) {
    SubtaskPass* pass = subtask_[i].get();
    Result<PassStats> r = Instrumented(
        config_, metrics_, 's', i, pass->name(),
        [&] { return pass->Run(ctx, st_graph, closure, must_persist); });
    if (!r.ok()) {
      return r.status().WithContext(std::string("in subtask pass ") +
                                    pass->name());
    }
    if (config_.optimizer.verify) {
      XORBITS_RETURN_NOT_OK(
          graph::VerifySubtaskGraph(*st_graph, closure, must_persist)
              .WithContext(std::string("after subtask pass ") +
                           pass->name()));
    }
  }
  return Status::OK();
}

}  // namespace xorbits::optimizer
