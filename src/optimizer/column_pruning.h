#ifndef XORBITS_OPTIMIZER_COLUMN_PRUNING_H_
#define XORBITS_OPTIMIZER_COLUMN_PRUNING_H_

#include <vector>

#include "graph/graph.h"

namespace xorbits::optimizer {

/// Column pruning (§V-A): traverses the tileable graph backward from the
/// sinks, recording the columns each operator needs, and installs the
/// pruned column set on parquet sources so unused columns are never read.
/// Sinks require their full schema. Must run before tiling. Returns the
/// number of source nodes whose pruned column set changed.
int PruneColumns(const std::vector<graph::TileableNode*>& topo_order,
                 const std::vector<graph::TileableNode*>& sinks);

}  // namespace xorbits::optimizer

#endif  // XORBITS_OPTIMIZER_COLUMN_PRUNING_H_
