#include "operators/window_ops.h"

#include "dataframe/compute.h"
#include "dataframe/kernels.h"
#include "operators/dataframe_ops.h"

namespace xorbits::operators {

using dataframe::Column;
using dataframe::DataFrame;
using graph::ChunkNode;
using graph::TileableNode;

Status PivotReshapeChunkOp::Execute(ExecutionContext& ctx) const {
  std::vector<const DataFrame*> pieces;
  for (const auto& c : ctx.inputs) {
    XORBITS_ASSIGN_OR_RETURN(const DataFrame* df, services::AsDataFrame(c));
    pieces.push_back(df);
  }
  XORBITS_ASSIGN_OR_RETURN(DataFrame merged, dataframe::Concat(pieces));
  XORBITS_ASSIGN_OR_RETURN(
      DataFrame out, dataframe::SpreadToWide(merged, index_, columns_,
                                             value_));
  ctx.outputs[0] = services::MakeChunk(std::move(out));
  return Status::OK();
}

Status LocalCumSumChunkOp::Execute(ExecutionContext& ctx) const {
  XORBITS_ASSIGN_OR_RETURN(const DataFrame* in,
                           services::AsDataFrame(ctx.inputs[0]));
  XORBITS_ASSIGN_OR_RETURN(const Column* col, in->GetColumn(column_));
  XORBITS_ASSIGN_OR_RETURN(Column scanned, dataframe::CumSumCol(*col));
  // The chunk's total is the last scanned value (0 for empty chunks).
  dataframe::Scalar total =
      scanned.length() > 0 && scanned.IsValid(scanned.length() - 1)
          ? scanned.GetScalar(scanned.length() - 1)
          : dataframe::Scalar::Float(0.0);
  DataFrame out = *in;
  XORBITS_RETURN_NOT_OK(out.SetColumn(output_, std::move(scanned)));
  ctx.outputs[0] = services::MakeChunk(std::move(out));
  DataFrame total_df;
  XORBITS_RETURN_NOT_OK(total_df.SetColumn(
      "__total__", Column::Full(dataframe::DType::kFloat64, 1,
                                dataframe::Scalar::Float(
                                    total.is_null() ? 0.0
                                                    : total.AsDouble()))));
  ctx.outputs[1] = services::MakeChunk(std::move(total_df));
  return Status::OK();
}

Status AddPrefixChunkOp::Execute(ExecutionContext& ctx) const {
  XORBITS_ASSIGN_OR_RETURN(const DataFrame* in,
                           services::AsDataFrame(ctx.inputs[0]));
  double prefix = 0.0;
  for (size_t i = 1; i < ctx.inputs.size(); ++i) {
    XORBITS_ASSIGN_OR_RETURN(const DataFrame* t,
                             services::AsDataFrame(ctx.inputs[i]));
    if (t->num_rows() > 0 && t->column(0).IsValid(0)) {
      prefix += t->column(0).GetDouble(0);
    }
  }
  XORBITS_ASSIGN_OR_RETURN(const Column* col, in->GetColumn(output_));
  // Keep the scan's dtype (pandas cumsum preserves integer columns).
  const dataframe::Scalar shift =
      col->dtype() == dataframe::DType::kInt64
          ? dataframe::Scalar::Int(static_cast<int64_t>(prefix))
          : dataframe::Scalar::Float(prefix);
  XORBITS_ASSIGN_OR_RETURN(
      Column shifted,
      dataframe::BinaryOpScalar(*col, shift, dataframe::BinOp::kAdd));
  DataFrame out = *in;
  XORBITS_RETURN_NOT_OK(out.SetColumn(output_, std::move(shifted)));
  ctx.outputs[0] = services::MakeChunk(std::move(out));
  return Status::OK();
}

Status RollingMeanChunkOp::Execute(ExecutionContext& ctx) const {
  XORBITS_ASSIGN_OR_RETURN(const DataFrame* in,
                           services::AsDataFrame(ctx.inputs[0]));
  XORBITS_ASSIGN_OR_RETURN(const Column* col, in->GetColumn(column_));
  Column data = *col;
  int64_t carry_rows = 0;
  if (has_carry_) {
    // Inputs 1..n are carry slices, oldest first.
    std::vector<const Column*> pieces;
    std::vector<Column> owned;
    owned.reserve(ctx.inputs.size());
    for (size_t i = 1; i < ctx.inputs.size(); ++i) {
      XORBITS_ASSIGN_OR_RETURN(const DataFrame* carry,
                               services::AsDataFrame(ctx.inputs[i]));
      XORBITS_ASSIGN_OR_RETURN(const Column* carry_col,
                               carry->GetColumn(column_));
      owned.push_back(*carry_col);
    }
    for (const Column& c : owned) {
      pieces.push_back(&c);
      carry_rows += c.length();
    }
    pieces.push_back(col);
    XORBITS_ASSIGN_OR_RETURN(data, Column::Concat(pieces));
  }
  XORBITS_ASSIGN_OR_RETURN(Column rolled,
                           dataframe::RollingMeanCol(data, window_));
  if (carry_rows > 0) {
    rolled = rolled.Slice(carry_rows, rolled.length() - carry_rows);
  }
  DataFrame out = *in;
  XORBITS_RETURN_NOT_OK(out.SetColumn(output_, std::move(rolled)));
  ctx.outputs[0] = services::MakeChunk(std::move(out));
  return Status::OK();
}

TileTask PivotReshapeOp::Tile(TileContext& ctx, TileableNode* node) {
  TileableNode* in = node->inputs[0];
  ChunkNode* wide = ctx.chunk_graph()->AddNode(
      std::make_shared<PivotReshapeChunkOp>(index_, columns_, value_),
      in->chunks);
  node->chunks.push_back(wide);
  node->tiled = true;
  co_return Status::OK();
}

TileTask CumSumOp::Tile(TileContext& ctx, TileableNode* node) {
  TileableNode* in = node->inputs[0];
  auto local_op = std::make_shared<LocalCumSumChunkOp>(column_, output_);
  std::vector<ChunkNode*> locals, totals;
  for (ChunkNode* chunk : in->chunks) {
    ChunkNode* scanned = ctx.chunk_graph()->AddNode(local_op, {chunk}, 0);
    ChunkNode* total = ctx.chunk_graph()->AddNode(local_op, {chunk}, 1);
    scanned->meta = chunk->meta;
    total->meta.rows = 1;
    total->meta.rows_exact = true;
    locals.push_back(scanned);
    totals.push_back(total);
  }
  auto prefix_op = std::make_shared<AddPrefixChunkOp>(output_);
  for (size_t i = 0; i < locals.size(); ++i) {
    if (i == 0) {
      node->chunks.push_back(locals[0]);
      continue;
    }
    std::vector<ChunkNode*> inputs{locals[i]};
    inputs.insert(inputs.end(), totals.begin(), totals.begin() + i);
    ChunkNode* shifted = ctx.chunk_graph()->AddNode(prefix_op, inputs);
    shifted->meta = locals[i]->meta;
    shifted->meta.chunk_row = static_cast<int64_t>(i);
    node->chunks.push_back(shifted);
  }
  node->tiled = true;
  co_return Status::OK();
}

TileTask RollingMeanOp::Tile(TileContext& ctx, TileableNode* node) {
  TileableNode* in = node->inputs[0];
  std::vector<ChunkNode*> chunks = in->chunks;
  // Boundary carries need exact row counts on every predecessor chunk.
  bool all_exact = true;
  for (ChunkNode* c : chunks) {
    if (!EstimateChunk(ctx, c).exact) all_exact = false;
  }
  if (!all_exact) {
    if (!ctx.dynamic()) {
      // Static fallback: gather and window in one piece.
      ChunkNode* gathered = ctx.chunk_graph()->AddNode(
          std::make_shared<ConcatChunkOp>(), chunks);
      ChunkNode* rolled = ctx.chunk_graph()->AddNode(
          std::make_shared<RollingMeanChunkOp>(column_, output_, window_,
                                               /*has_carry=*/false),
          {gathered});
      node->chunks.push_back(rolled);
      node->tiled = true;
      co_return Status::OK();
    }
    ctx.metrics()->dynamic_yields++;
    co_yield chunks;
  }
  for (size_t i = 0; i < chunks.size(); ++i) {
    if (i == 0) {
      ChunkNode* rolled = ctx.chunk_graph()->AddNode(
          std::make_shared<RollingMeanChunkOp>(column_, output_, window_,
                                               false),
          {chunks[0]});
      rolled->meta = chunks[0]->meta;
      node->chunks.push_back(rolled);
      continue;
    }
    // Collect window-1 carry rows, walking back through as many
    // predecessor chunks as necessary (small chunks may not cover the
    // window on their own).
    std::vector<ChunkNode*> carries;  // newest first while collecting
    int64_t still_needed = window_ - 1;
    for (int64_t j = static_cast<int64_t>(i) - 1;
         j >= 0 && still_needed > 0; --j) {
      SizeEstimate prev = EstimateChunk(ctx, chunks[j]);
      if (prev.rows < 0) co_return Status::ExecutionError("rolling: no meta");
      const int64_t take = std::min<int64_t>(still_needed, prev.rows);
      if (take > 0) {
        carries.push_back(ctx.chunk_graph()->AddNode(
            std::make_shared<SliceChunkOp>(prev.rows - take, take),
            {chunks[j]}));
      }
      still_needed -= take;
    }
    std::vector<ChunkNode*> inputs{chunks[i]};
    inputs.insert(inputs.end(), carries.rbegin(), carries.rend());
    ChunkNode* rolled = ctx.chunk_graph()->AddNode(
        std::make_shared<RollingMeanChunkOp>(column_, output_, window_,
                                             /*has_carry=*/true),
        inputs);
    rolled->meta = chunks[i]->meta;
    rolled->meta.chunk_row = static_cast<int64_t>(i);
    node->chunks.push_back(rolled);
  }
  node->tiled = true;
  co_return Status::OK();
}

}  // namespace xorbits::operators
