#include "operators/dataframe_ops.h"

#include <algorithm>
#include <functional>

#include "dataframe/kernels.h"

namespace xorbits::operators {

using dataframe::DataFrame;
using graph::ChunkNode;
using graph::TileableNode;

// --- chunk kernels ---

Status EvalChunkOp::Execute(ExecutionContext& ctx) const {
  if (late_) return ExecuteLate(ctx);
  XORBITS_ASSIGN_OR_RETURN(const DataFrame* in,
                           services::AsDataFrame(ctx.inputs[0]));
  DataFrame df = *in;
  for (const auto& a : assignments_) {
    XORBITS_ASSIGN_OR_RETURN(dataframe::Column col, EvalExpr(df, *a.expr));
    XORBITS_RETURN_NOT_OK(df.SetColumn(a.name, std::move(col)));
  }
  if (filter_) {
    XORBITS_ASSIGN_OR_RETURN(dataframe::Column mask, EvalExpr(df, *filter_));
    XORBITS_ASSIGN_OR_RETURN(df, dataframe::Filter(df, mask));
  }
  if (!projection_.empty()) {
    // The projection list is validated against the full schema when the
    // graph is built; column pruning may since have narrowed what this
    // chunk's input delivers (a rename projects its whole schema, but only
    // the pruned subset arrives). Project what the optimized plan provides.
    std::vector<std::string> cols;
    for (const auto& c : projection_) {
      if (df.HasColumn(c)) cols.push_back(c);
    }
    XORBITS_ASSIGN_OR_RETURN(df, df.Select(cols));
  }
  ctx.outputs[0] = services::MakeChunk(std::move(df));
  return Status::OK();
}

Status EvalChunkOp::ExecuteLate(ExecutionContext& ctx) const {
  XORBITS_ASSIGN_OR_RETURN(const DataFrame* in,
                           services::AsDataFrame(ctx.inputs[0]));
  DataFrame df = *in;
  for (const auto& a : assignments_) {
    // Defer the transform behind a lazy slot when possible; expressions the
    // probe rejects (or that would land on a filtered eager frame) fall
    // back to eager evaluation — correctness never depends on deferral.
    Result<dataframe::ColumnSourcePtr> src = MakeDeferredExprSource(df, a.expr);
    bool deferred = false;
    if (src.ok()) {
      deferred = df.SetColumnSource(a.name, src.MoveValue()).ok();
    }
    if (!deferred) {
      XORBITS_ASSIGN_OR_RETURN(dataframe::Column col, EvalExpr(df, *a.expr));
      XORBITS_RETURN_NOT_OK(df.SetColumn(a.name, std::move(col)));
    }
  }
  if (filter_) {
    // Evaluating the mask resolves only the predicate's columns; the filter
    // itself composes a pending selection — nothing else is touched.
    XORBITS_ASSIGN_OR_RETURN(dataframe::Column mask, EvalExpr(df, *filter_));
    XORBITS_ASSIGN_OR_RETURN(df, dataframe::FilterLate(df, mask));
  }
  if (!projection_.empty()) {
    std::vector<std::string> cols;
    for (const auto& c : projection_) {
      if (df.HasColumn(c)) cols.push_back(c);
    }
    XORBITS_ASSIGN_OR_RETURN(df, df.Select(cols));
  }
  ctx.outputs[0] = services::MakeChunk(std::move(df));
  return Status::OK();
}

std::shared_ptr<ChunkOp> EvalChunkOp::WithLateMaterialization() const {
  auto copy =
      std::make_shared<EvalChunkOp>(assignments_, filter_, projection_);
  copy->late_ = true;
  return copy;
}

std::optional<std::string> EvalChunkOp::CseSignature() const {
  std::string sig = "eval|";
  for (const auto& a : assignments_) {
    sig += a.name;
    sig += '=';
    sig += a.expr->ToString();
    sig += ';';
  }
  sig += '|';
  if (filter_ != nullptr) sig += filter_->ToString();
  sig += '|';
  for (const auto& c : projection_) {
    sig += c;
    sig += ',';
  }
  return sig;
}

Status SliceChunkOp::Execute(ExecutionContext& ctx) const {
  if (ctx.inputs[0]->is_ndarray()) {
    ctx.outputs[0] = services::MakeChunk(
        ctx.inputs[0]->ndarray().SliceRows(offset_, offset_ + count_));
    return Status::OK();
  }
  XORBITS_ASSIGN_OR_RETURN(const DataFrame* in,
                           services::AsDataFrame(ctx.inputs[0]));
  ctx.outputs[0] = services::MakeChunk(in->SliceRows(offset_, count_));
  return Status::OK();
}

Status ConcatChunkOp::Execute(ExecutionContext& ctx) const {
  if (ctx.inputs.empty()) return Status::Invalid("Concat of no chunks");
  if (ctx.inputs[0]->is_ndarray()) {
    std::vector<const tensor::NDArray*> pieces;
    for (const auto& c : ctx.inputs) {
      XORBITS_ASSIGN_OR_RETURN(const tensor::NDArray* a,
                               services::AsNDArray(c));
      pieces.push_back(a);
    }
    XORBITS_ASSIGN_OR_RETURN(tensor::NDArray out, tensor::VStack(pieces));
    ctx.outputs[0] = services::MakeChunk(std::move(out));
    return Status::OK();
  }
  std::vector<const DataFrame*> pieces;
  for (const auto& c : ctx.inputs) {
    XORBITS_ASSIGN_OR_RETURN(const DataFrame* df, services::AsDataFrame(c));
    pieces.push_back(df);
  }
  XORBITS_ASSIGN_OR_RETURN(DataFrame out, dataframe::Concat(pieces));
  ctx.outputs[0] = services::MakeChunk(std::move(out));
  return Status::OK();
}

Status SortChunkOp::Execute(ExecutionContext& ctx) const {
  XORBITS_ASSIGN_OR_RETURN(const DataFrame* in,
                           services::AsDataFrame(ctx.inputs[0]));
  XORBITS_ASSIGN_OR_RETURN(DataFrame out,
                           dataframe::SortValues(*in, by_, ascending_));
  ctx.outputs[0] = services::MakeChunk(std::move(out));
  return Status::OK();
}

Status DedupChunkOp::Execute(ExecutionContext& ctx) const {
  DataFrame merged;
  if (ctx.inputs.size() == 1) {
    XORBITS_ASSIGN_OR_RETURN(const DataFrame* in,
                             services::AsDataFrame(ctx.inputs[0]));
    merged = *in;
  } else {
    std::vector<const DataFrame*> pieces;
    for (const auto& c : ctx.inputs) {
      XORBITS_ASSIGN_OR_RETURN(const DataFrame* df, services::AsDataFrame(c));
      pieces.push_back(df);
    }
    XORBITS_ASSIGN_OR_RETURN(merged, dataframe::Concat(pieces));
  }
  XORBITS_ASSIGN_OR_RETURN(DataFrame out,
                           dataframe::DropDuplicates(merged, subset_));
  ctx.outputs[0] = services::MakeChunk(std::move(out));
  return Status::OK();
}

Status QuantileBoundariesChunkOp::Execute(ExecutionContext& ctx) const {
  XORBITS_ASSIGN_OR_RETURN(const DataFrame* in,
                           services::AsDataFrame(ctx.inputs[0]));
  XORBITS_ASSIGN_OR_RETURN(DataFrame sorted,
                           dataframe::SortValues(*in, {key_}, {ascending_}));
  const int64_t n = sorted.num_rows();
  std::vector<int64_t> picks;
  for (int p = 1; p < partitions_; ++p) {
    int64_t idx = n == 0 ? 0 : std::min<int64_t>(n - 1, p * n / partitions_);
    picks.push_back(idx);
  }
  DataFrame bounds =
      n == 0 ? sorted.SliceRows(0, 0) : sorted.TakeRows(picks);
  XORBITS_ASSIGN_OR_RETURN(bounds, bounds.Select({key_}));
  ctx.outputs[0] = services::MakeChunk(std::move(bounds));
  return Status::OK();
}

Status RangePartitionChunkOp::Execute(ExecutionContext& ctx) const {
  XORBITS_ASSIGN_OR_RETURN(const DataFrame* in,
                           services::AsDataFrame(ctx.inputs[0]));
  XORBITS_ASSIGN_OR_RETURN(const DataFrame* bounds,
                           services::AsDataFrame(ctx.inputs[1]));
  XORBITS_ASSIGN_OR_RETURN(const dataframe::Column* key, in->GetColumn(key_));
  XORBITS_ASSIGN_OR_RETURN(const dataframe::Column* bcol,
                           bounds->GetColumn(key_));
  const int64_t n = in->num_rows();
  std::vector<std::vector<int64_t>> part_rows(partitions_);
  for (int64_t i = 0; i < n; ++i) {
    dataframe::Scalar v = key->GetScalar(i);
    int p = 0;
    while (p < bcol->length()) {
      dataframe::Scalar b = bcol->GetScalar(p);
      // Ascending: rows <= boundary stay left; ties never straddle.
      const bool goes_left = ascending_ ? !(b < v) : !(v < b);
      if (goes_left) break;
      ++p;
    }
    part_rows[p].push_back(i);
  }
  for (int p = 0; p < partitions_; ++p) {
    XORBITS_RETURN_NOT_OK(ctx.EmitShufflePartition(
        p, services::MakeChunk(in->TakeRows(part_rows[p]))));
  }
  return Status::OK();
}

std::vector<std::string> SortMergeChunkOp::InputKeys(
    const graph::ChunkNode& node) const {
  std::vector<std::string> keys;
  for (const graph::ChunkNode* in : node.inputs) {
    keys.push_back(in->key + "@" + std::to_string(partition_));
  }
  return keys;
}

Status SortMergeChunkOp::Execute(ExecutionContext& ctx) const {
  std::vector<const DataFrame*> pieces;
  for (const auto& c : ctx.inputs) {
    XORBITS_ASSIGN_OR_RETURN(const DataFrame* df, services::AsDataFrame(c));
    pieces.push_back(df);
  }
  XORBITS_ASSIGN_OR_RETURN(DataFrame merged, dataframe::Concat(pieces));
  XORBITS_ASSIGN_OR_RETURN(DataFrame out,
                           dataframe::SortValues(merged, by_, ascending_));
  ctx.outputs[0] = services::MakeChunk(std::move(out));
  return Status::OK();
}

// --- helpers ---

std::vector<ChunkNode*> BuildTreeReduce(
    TileContext& ctx, std::vector<ChunkNode*> inputs, int64_t avg_chunk_bytes,
    const std::function<std::shared_ptr<ChunkOp>()>& make_op) {
  // Auto merge (§IV-C): concatenate partials until the merged chunk would
  // reach the chunk store limit.
  int64_t fan_in = 4;
  if (avg_chunk_bytes > 0) {
    fan_in = ctx.config().chunk_store_limit / avg_chunk_bytes;
  }
  fan_in = std::clamp<int64_t>(fan_in, 2, 16);
  std::vector<ChunkNode*> level = std::move(inputs);
  while (level.size() > 1) {
    std::vector<ChunkNode*> next;
    for (size_t i = 0; i < level.size(); i += fan_in) {
      std::vector<ChunkNode*> group(
          level.begin() + i,
          level.begin() + std::min(level.size(), i + fan_in));
      if (group.size() == 1 && level.size() > 1 && next.empty() &&
          i + fan_in >= level.size()) {
        // Lone trailing chunk: pass through to next level.
        next.push_back(group[0]);
        continue;
      }
      ChunkNode* combined =
          ctx.chunk_graph()->AddNode(make_op(), std::move(group));
      next.push_back(combined);
    }
    level = std::move(next);
  }
  return level;
}

// --- tileable ops ---

TileTask EvalOp::Tile(TileContext& ctx, TileableNode* node) {
  TileableNode* in = node->inputs[0];
  auto op = std::make_shared<EvalChunkOp>(assignments_, filter_, projection_);
  for (ChunkNode* in_chunk : in->chunks) {
    ChunkNode* chunk = ctx.chunk_graph()->AddNode(op, {in_chunk});
    SizeEstimate est = EstimateChunk(ctx, in_chunk);
    chunk->meta.chunk_row = static_cast<int64_t>(node->chunks.size());
    if (filter_) {
      // Output shape depends on data content (non-static operator).
      if (ctx.dynamic()) {
        chunk->meta.rows = -1;
        chunk->meta.nbytes = -1;
      } else {
        // Static planners assume the filter keeps everything — the
        // mis-estimation the paper's §IV-A calls out.
        chunk->meta.rows = est.rows;
        chunk->meta.nbytes = est.nbytes;
        chunk->meta.rows_exact = false;
      }
    } else {
      chunk->meta.rows = est.rows;
      chunk->meta.rows_exact = est.exact;
      chunk->meta.nbytes = est.nbytes;
    }
    node->chunks.push_back(chunk);
  }
  node->tiled = true;
  co_return Status::OK();
}

std::optional<std::vector<std::set<std::string>>> EvalOp::RequiredInputColumns(
    const graph::TileableNode& node,
    const std::set<std::string>& out_columns) const {
  std::set<std::string> need;
  for (const std::string& c : out_columns) {
    bool assigned = false;
    for (const auto& a : assignments_) {
      if (a.name == c) {
        a.expr->CollectColumns(&need);
        assigned = true;
        break;
      }
    }
    if (!assigned) need.insert(c);
  }
  if (filter_) filter_->CollectColumns(&need);
  return std::vector<std::set<std::string>>{std::move(need)};
}

namespace {

/// Shared head/iloc machinery: ensures the row counts of input chunks are
/// exactly known up to cumulative row `limit`, yielding chunks for
/// execution when the engine allows it. Returns per-chunk exact row counts
/// (-1 past the point of interest).
struct PrefixRows {
  std::vector<int64_t> rows;
  bool all_known = true;
};

TileTask GatherSliceFallback(TileContext& ctx, TileableNode* node,
                             int64_t offset, int64_t count) {
  // Static engines without partition sizes: gather everything to one chunk
  // and slice — the memory-hungry fallback.
  TileableNode* in = node->inputs[0];
  ChunkNode* concat =
      ctx.chunk_graph()->AddNode(std::make_shared<ConcatChunkOp>(),
                                 in->chunks);
  ChunkNode* slice = ctx.chunk_graph()->AddNode(
      std::make_shared<SliceChunkOp>(offset, count), {concat});
  slice->meta.rows = count;
  node->chunks.push_back(slice);
  node->tiled = true;
  co_return Status::OK();
}

}  // namespace

TileTask HeadOp::Tile(TileContext& ctx, TileableNode* node) {
  TileableNode* in = node->inputs[0];
  int64_t cum = 0;
  std::vector<ChunkNode*> out;
  for (ChunkNode* chunk : in->chunks) {
    if (cum >= n_) break;
    SizeEstimate est = EstimateChunk(ctx, chunk);
    if (!est.exact) {
      if (!ctx.dynamic()) {
        // Static planners cannot know filtered chunk sizes.
        TileTask fallback = GatherSliceFallback(ctx, node, 0, n_);
        while (fallback.Resume()) {
          co_yield std::move(fallback.pending().chunks);
        }
        co_return fallback.result();
      }
      // Iterative tiling: execute this chunk, then read its real shape.
      ctx.metrics()->dynamic_yields++;
      std::vector<ChunkNode*> to_run{chunk};
      co_yield to_run;
      est = EstimateChunk(ctx, chunk);
      if (!est.exact) co_return Status::ExecutionError("head: no meta");
    }
    if (cum + est.rows <= n_) {
      out.push_back(chunk);
      cum += est.rows;
    } else {
      ChunkNode* slice = ctx.chunk_graph()->AddNode(
          std::make_shared<SliceChunkOp>(0, n_ - cum), {chunk});
      slice->meta.rows = n_ - cum;
      slice->meta.rows_exact = true;
      out.push_back(slice);
      cum = n_;
    }
  }
  if (out.empty()) {
    // Head of an empty frame: slice chunk 0 to zero rows.
    ChunkNode* slice = ctx.chunk_graph()->AddNode(
        std::make_shared<SliceChunkOp>(0, 0), {in->chunks[0]});
    out.push_back(slice);
  }
  for (size_t i = 0; i < out.size(); ++i) out[i]->meta.chunk_row = i;
  node->chunks = std::move(out);
  node->tiled = true;
  co_return Status::OK();
}

TileTask ILocOp::Tile(TileContext& ctx, TileableNode* node) {
  TileableNode* in = node->inputs[0];
  if (pos_ < 0) {
    co_return Status::NotImplemented("iloc with negative positions");
  }
  int64_t cum = 0;
  for (ChunkNode* chunk : in->chunks) {
    SizeEstimate est = EstimateChunk(ctx, chunk);
    if (!est.exact) {
      if (!ctx.dynamic()) {
        if (ctx.config().engine == EngineKind::kDaskLike) {
          // Listing 1 of the paper: Dask fails on positional indexing over
          // unknown divisions.
          co_return Status::NotImplemented(
              "iloc on a frame with unknown partition sizes");
        }
        TileTask fallback = GatherSliceFallback(ctx, node, pos_, 1);
        while (fallback.Resume()) {
          co_yield std::move(fallback.pending().chunks);
        }
        co_return fallback.result();
      }
      ctx.metrics()->dynamic_yields++;
      std::vector<ChunkNode*> to_run{chunk};
      co_yield to_run;
      est = EstimateChunk(ctx, chunk);
      if (!est.exact) co_return Status::ExecutionError("iloc: no meta");
    }
    if (pos_ < cum + est.rows) {
      // Fig. 3(c): append an ILoc (slice) operator to the owning chunk only.
      ChunkNode* slice = ctx.chunk_graph()->AddNode(
          std::make_shared<SliceChunkOp>(pos_ - cum, 1), {chunk});
      slice->meta.rows = 1;
      slice->meta.rows_exact = true;
      node->chunks.push_back(slice);
      node->tiled = true;
      co_return Status::OK();
    }
    cum += est.rows;
  }
  co_return Status::IndexError("iloc position " + std::to_string(pos_) +
                               " out of bounds for " + std::to_string(cum) +
                               " rows");
}

TileTask ConcatOp::Tile(TileContext& ctx, TileableNode* node) {
  for (TileableNode* in : node->inputs) {
    for (ChunkNode* chunk : in->chunks) {
      node->chunks.push_back(chunk);
      // Re-number positions in the concatenated frame.
      node->chunks.back()->meta.chunk_row =
          static_cast<int64_t>(node->chunks.size()) - 1;
    }
  }
  node->tiled = true;
  co_return Status::OK();
}

TileTask SortValuesOp::Tile(TileContext& ctx, TileableNode* node) {
  TileableNode* in = node->inputs[0];
  std::vector<ChunkNode*> chunks = in->chunks;
  SizeEstimate est = EstimateChunks(ctx, chunks);
  if (ctx.dynamic() && est.nbytes < 0 && !chunks.empty()) {
    ctx.metrics()->dynamic_yields++;
    std::vector<ChunkNode*> to_run{chunks[0]};
    co_yield to_run;
    est = EstimateChunks(ctx, chunks);
  }
  const bool small =
      est.nbytes >= 0 && est.nbytes <= ctx.config().chunk_store_limit;
  if (small || chunks.size() <= 1 || !ctx.dynamic()) {
    ChunkNode* gathered = chunks.size() == 1
                              ? chunks[0]
                              : ctx.chunk_graph()->AddNode(
                                    std::make_shared<ConcatChunkOp>(), chunks);
    ChunkNode* sorted = ctx.chunk_graph()->AddNode(
        std::make_shared<SortChunkOp>(by_, ascending_), {gathered});
    sorted->meta.rows = est.rows;
    node->chunks.push_back(sorted);
    node->tiled = true;
    co_return Status::OK();
  }
  // Sample-based range partition sort.
  const int partitions = static_cast<int>(
      ChooseChunkCount(ctx.config(), est.nbytes));
  ChunkNode* bounds = ctx.chunk_graph()->AddNode(
      std::make_shared<QuantileBoundariesChunkOp>(by_[0], partitions,
                                                  ascending_[0]),
      {chunks[0]});
  std::vector<ChunkNode*> mappers;
  auto part_op = std::make_shared<RangePartitionChunkOp>(by_[0], partitions,
                                                         ascending_[0]);
  for (ChunkNode* chunk : chunks) {
    mappers.push_back(ctx.chunk_graph()->AddNode(part_op, {chunk, bounds}));
  }
  for (int p = 0; p < partitions; ++p) {
    ChunkNode* merged = ctx.chunk_graph()->AddNode(
        std::make_shared<SortMergeChunkOp>(p, by_, ascending_), mappers);
    merged->meta.chunk_row = p;
    node->chunks.push_back(merged);
  }
  node->tiled = true;
  co_return Status::OK();
}

TileTask DropDuplicatesOp::Tile(TileContext& ctx, TileableNode* node) {
  TileableNode* in = node->inputs[0];
  auto subset = subset_;
  std::vector<ChunkNode*> partials;
  for (ChunkNode* chunk : in->chunks) {
    partials.push_back(ctx.chunk_graph()->AddNode(
        std::make_shared<DedupChunkOp>(subset), {chunk}));
  }
  int64_t avg_bytes = -1;
  if (ctx.dynamic() && !partials.empty()) {
    // Auto reduce selection needs the deduplicated size, not the raw size.
    ctx.metrics()->dynamic_yields++;
    std::vector<ChunkNode*> sample(
        partials.begin(),
        partials.begin() + std::min<size_t>(partials.size(),
                                            ctx.config().sample_chunks));
    co_yield sample;
    SizeEstimate est = EstimateChunk(ctx, partials[0]);
    avg_bytes = est.nbytes;
  }
  std::vector<ChunkNode*> reduced = BuildTreeReduce(
      ctx, std::move(partials), avg_bytes,
      [&subset] { return std::make_shared<DedupChunkOp>(subset); });
  node->chunks = std::move(reduced);
  node->tiled = true;
  co_return Status::OK();
}

std::optional<std::vector<std::set<std::string>>>
DropDuplicatesOp::RequiredInputColumns(
    const graph::TileableNode& node,
    const std::set<std::string>& out_columns) const {
  std::set<std::string> need = out_columns;
  for (const auto& c : subset_) need.insert(c);
  return std::vector<std::set<std::string>>{std::move(need)};
}

}  // namespace xorbits::operators
