#include "operators/source_ops.h"

#include <algorithm>
#include <filesystem>
#include <set>

#include "dataframe/kernels.h"
#include "io/csv.h"
#include "io/serialize.h"
#include "io/xparquet.h"
#include "services/result_cache.h"
#include "tiling/auto_rechunk.h"

namespace xorbits::operators {

using dataframe::DataFrame;
using dataframe::DType;
using graph::ChunkNode;
using graph::TileableNode;
using tensor::NDArray;

namespace {

/// Fills planning meta on a freshly created chunk node.
void SetPlannedMeta(ChunkNode* chunk, int64_t rows, int64_t cols,
                    int64_t nbytes, int64_t chunk_row) {
  chunk->meta.rows = rows;
  chunk->meta.cols = cols;
  chunk->meta.nbytes = nbytes;
  chunk->meta.chunk_row = chunk_row;
}

/// Empty column of the given dtype — what an all-false Filter leaves behind
/// (no data, no validity), so skipped payload blocks stay byte-identical.
dataframe::Column EmptyColumn(dataframe::DType dtype) {
  using dataframe::Column;
  switch (dtype) {
    case DType::kInt64:
      return Column::Int64({});
    case DType::kFloat64:
      return Column::Float64({});
    case DType::kBool:
      return Column::Bool({});
    case DType::kString:
      return Column::String({});
  }
  return Column::Int64({});
}

/// File-version suffix for source cache signatures: mtime + size, so a
/// rewritten input file hashes to a fresh cache key (DESIGN.md §9).
/// nullopt when the file cannot be stat'ed — an unverifiable source must
/// not take part in cross-session reuse.
std::optional<std::string> FileVersionTag(const std::string& path) {
  std::error_code ec;
  const auto mtime = std::filesystem::last_write_time(path, ec);
  if (ec) return std::nullopt;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec) return std::nullopt;
  return "|v=" + std::to_string(mtime.time_since_epoch().count()) + ":" +
         std::to_string(static_cast<int64_t>(size));
}

/// Rows the mask actually keeps (true and valid), mirroring
/// dataframe::Filter's effective-mask rule.
int64_t CountMatches(const dataframe::Column& mask) {
  const auto& data = mask.bool_data();
  int64_t matches = 0;
  for (int64_t i = 0; i < mask.length(); ++i) {
    if (data[i] != 0 && (!mask.has_validity() || mask.validity()[i])) {
      ++matches;
    }
  }
  return matches;
}

}  // namespace

Status ReadXpqChunkOp::Execute(ExecutionContext& ctx) const {
  if (late_) return ExecuteLate(ctx);
  int64_t bytes = 0;
  if (filter_ == nullptr) {
    XORBITS_ASSIGN_OR_RETURN(
        DataFrame df, io::ReadXpq(path_, columns_, row_offset_, row_count_,
                                  &bytes, dict_encode_));
    if (ctx.metrics != nullptr) ctx.metrics->source_bytes_read += bytes;
    ctx.outputs[0] = services::MakeChunk(std::move(df));
    return Status::OK();
  }
  // Pushed predicate: phase 1 reads only the predicate's columns and
  // evaluates the mask; the remaining payload blocks are fetched only when
  // at least one row survives. Output is byte-identical to reading every
  // column and filtering afterwards.
  XORBITS_ASSIGN_OR_RETURN(io::XpqFileInfo info, io::ReadXpqInfo(path_));
  std::vector<std::string> out_names = columns_;
  if (out_names.empty()) {
    for (const auto& c : info.columns) out_names.push_back(c.name);
  }
  std::set<std::string> fset;
  filter_->CollectColumns(&fset);
  std::vector<std::string> fcols(fset.begin(), fset.end());
  if (fcols.empty() && !out_names.empty()) {
    // Constant predicate: probe the cheapest output column for the row
    // count the mask must cover.
    const io::XpqColumnInfo* cheapest = nullptr;
    for (const auto& c : info.columns) {
      const bool wanted = std::find(out_names.begin(), out_names.end(),
                                    c.name) != out_names.end();
      if (wanted && (cheapest == nullptr || c.nbytes < cheapest->nbytes)) {
        cheapest = &c;
      }
    }
    if (cheapest != nullptr) fcols.push_back(cheapest->name);
  }
  XORBITS_ASSIGN_OR_RETURN(
      DataFrame probe, io::ReadXpq(path_, fcols, row_offset_, row_count_,
                                   &bytes, dict_encode_));
  XORBITS_ASSIGN_OR_RETURN(dataframe::Column mask, EvalExpr(probe, *filter_));
  if (mask.dtype() != DType::kBool) {
    return Status::TypeError("pushed filter predicate must be boolean");
  }

  DataFrame out;
  if (CountMatches(mask) == 0) {
    // Nothing survives: skip every remaining payload block and synthesize
    // the empty frame Filter would have produced.
    XORBITS_ASSIGN_OR_RETURN(DataFrame empty_probe,
                             dataframe::Filter(probe, mask));
    for (const auto& name : out_names) {
      if (empty_probe.HasColumn(name)) {
        XORBITS_ASSIGN_OR_RETURN(const dataframe::Column* col,
                                 empty_probe.GetColumn(name));
        XORBITS_RETURN_NOT_OK(out.SetColumn(name, *col));
      } else {
        const io::XpqColumnInfo* ci = nullptr;
        for (const auto& c : info.columns) {
          if (c.name == name) {
            ci = &c;
            break;
          }
        }
        if (ci == nullptr) {
          return Status::KeyError("xparquet column not found: " + name);
        }
        XORBITS_RETURN_NOT_OK(out.SetColumn(name, EmptyColumn(ci->dtype)));
      }
    }
    out.set_index(empty_probe.index());
  } else {
    std::vector<std::string> rest;
    for (const auto& name : out_names) {
      if (!probe.HasColumn(name)) rest.push_back(name);
    }
    DataFrame payload;
    if (!rest.empty()) {
      XORBITS_ASSIGN_OR_RETURN(
          payload, io::ReadXpq(path_, rest, row_offset_, row_count_, &bytes,
                               dict_encode_));
    }
    DataFrame full;
    for (const auto& name : out_names) {
      const DataFrame& src = probe.HasColumn(name) ? probe : payload;
      XORBITS_ASSIGN_OR_RETURN(const dataframe::Column* col,
                               src.GetColumn(name));
      XORBITS_RETURN_NOT_OK(full.SetColumn(name, *col));
    }
    full.set_index(probe.index());
    XORBITS_ASSIGN_OR_RETURN(out, dataframe::Filter(full, mask));
  }
  if (ctx.metrics != nullptr) ctx.metrics->source_bytes_read += bytes;
  ctx.outputs[0] = services::MakeChunk(std::move(out));
  return Status::OK();
}

Status ReadXpqChunkOp::ExecuteLate(ExecutionContext& ctx) const {
  // Late variant (DESIGN.md §10). Without a filter the whole frame is
  // sourced lazily: only the footer is read here. With a pushed filter,
  // the predicate's columns are probed eagerly (that I/O is unavoidable —
  // the mask needs their values), every other column becomes a thunk, and
  // the mask is carried as a pending selection instead of compacting. An
  // all-false mask leaves an empty selection, so payload blocks are never
  // fetched — the same I/O skip the eager two-phase path special-cases.
  if (filter_ == nullptr) {
    XORBITS_ASSIGN_OR_RETURN(
        DataFrame df, io::ReadXpqLazy(path_, columns_, row_offset_,
                                      row_count_, dict_encode_));
    ctx.outputs[0] = services::MakeChunk(std::move(df));
    return Status::OK();
  }
  int64_t bytes = 0;
  XORBITS_ASSIGN_OR_RETURN(io::XpqFileInfo info, io::ReadXpqInfo(path_));
  std::vector<std::string> out_names = columns_;
  if (out_names.empty()) {
    for (const auto& c : info.columns) out_names.push_back(c.name);
  }
  std::set<std::string> fset;
  filter_->CollectColumns(&fset);
  std::vector<std::string> fcols(fset.begin(), fset.end());
  if (fcols.empty() && !out_names.empty()) {
    const io::XpqColumnInfo* cheapest = nullptr;
    for (const auto& c : info.columns) {
      const bool wanted = std::find(out_names.begin(), out_names.end(),
                                    c.name) != out_names.end();
      if (wanted && (cheapest == nullptr || c.nbytes < cheapest->nbytes)) {
        cheapest = &c;
      }
    }
    if (cheapest != nullptr) fcols.push_back(cheapest->name);
  }
  XORBITS_ASSIGN_OR_RETURN(
      DataFrame probe, io::ReadXpq(path_, fcols, row_offset_, row_count_,
                                   &bytes, dict_encode_));
  XORBITS_ASSIGN_OR_RETURN(dataframe::Column mask, EvalExpr(probe, *filter_));
  if (mask.dtype() != DType::kBool) {
    return Status::TypeError("pushed filter predicate must be boolean");
  }
  const int64_t count = row_count_ < 0 ? info.num_rows - row_offset_
                                       : row_count_;
  DataFrame full;
  for (const auto& name : out_names) {
    if (probe.HasColumn(name)) {
      XORBITS_ASSIGN_OR_RETURN(const dataframe::Column* col,
                               probe.GetColumn(name));
      XORBITS_RETURN_NOT_OK(full.SetColumn(name, *col));
      continue;
    }
    const io::XpqColumnInfo* ci = nullptr;
    for (const auto& c : info.columns) {
      if (c.name == name) {
        ci = &c;
        break;
      }
    }
    if (ci == nullptr) {
      return Status::KeyError("xparquet column not found: " + name);
    }
    XORBITS_RETURN_NOT_OK(full.SetColumnSource(
        name, std::make_shared<io::XpqColumnSource>(
                  path_, *ci, info.num_rows, row_offset_, count,
                  info.version >= 2, dict_encode_)));
  }
  full.set_index(probe.index());
  // `full` is lazy, so Filter composes the mask into its selection instead
  // of compacting (FilterRowsLate under dataframe::Filter).
  XORBITS_ASSIGN_OR_RETURN(DataFrame out, dataframe::Filter(full, mask));
  if (ctx.metrics != nullptr) ctx.metrics->source_bytes_read += bytes;
  ctx.outputs[0] = services::MakeChunk(std::move(out));
  return Status::OK();
}

std::shared_ptr<ChunkOp> ReadXpqChunkOp::WithLateMaterialization() const {
  auto copy = std::make_shared<ReadXpqChunkOp>(path_, columns_, row_offset_,
                                               row_count_, filter_,
                                               dict_encode_);
  copy->late_ = true;
  return copy;
}

std::optional<std::string> ReadXpqChunkOp::CseSignature() const {
  std::string sig = "xpq|" + path_ + "|" + std::to_string(row_offset_) + "|" +
                    std::to_string(row_count_) + "|" +
                    (dict_encode_ ? "d|" : "p|") +
                    (filter_ != nullptr ? filter_->ToString() : "") + "|";
  for (const auto& c : columns_) {
    sig += c;
    sig += ',';
  }
  return sig;
}

std::optional<std::string> ReadXpqChunkOp::CacheSignature() const {
  std::optional<std::string> version = FileVersionTag(path_);
  if (!version.has_value()) return std::nullopt;
  return *CseSignature() + *version;
}

Status ReadCsvChunkOp::Execute(ExecutionContext& ctx) const {
  io::CsvOptions opts;
  opts.parse_dates = parse_dates_;
  opts.skip_rows = skip_rows_;
  opts.max_rows = max_rows_;
  XORBITS_ASSIGN_OR_RETURN(DataFrame df, io::ReadCsv(path_, opts));
  if (filter_ != nullptr) {
    // CSV is row-major: the pushed predicate cannot skip file bytes, but
    // filtering at the source still shrinks every downstream chunk.
    XORBITS_ASSIGN_OR_RETURN(dataframe::Column mask, EvalExpr(df, *filter_));
    XORBITS_ASSIGN_OR_RETURN(DataFrame filtered,
                             dataframe::Filter(df, mask));
    df = std::move(filtered);
  }
  ctx.outputs[0] = services::MakeChunk(std::move(df));
  return Status::OK();
}

std::optional<std::string> ReadCsvChunkOp::CseSignature() const {
  std::string sig = "csv|" + path_ + "|" + std::to_string(skip_rows_) + "|" +
                    std::to_string(max_rows_) + "|" +
                    (filter_ != nullptr ? filter_->ToString() : "") + "|";
  for (const auto& c : parse_dates_) {
    sig += c;
    sig += ',';
  }
  return sig;
}

std::optional<std::string> ReadCsvChunkOp::CacheSignature() const {
  std::optional<std::string> version = FileVersionTag(path_);
  if (!version.has_value()) return std::nullopt;
  return *CseSignature() + *version;
}

Status RandomChunkOp::Execute(ExecutionContext& ctx) const {
  Rng rng(seed_);
  NDArray out = dist_ == Dist::kUniform
                    ? NDArray::RandomUniform(shape_, rng)
                    : NDArray::RandomNormal(shape_, rng);
  ctx.outputs[0] = services::MakeChunk(std::move(out));
  return Status::OK();
}

std::optional<std::string> RandomChunkOp::CseSignature() const {
  std::string sig = "rand|" + std::to_string(seed_) + "|" +
                    std::to_string(static_cast<int>(dist_)) + "|";
  for (int64_t d : shape_) {
    sig += std::to_string(d);
    sig += ',';
  }
  return sig;
}

Status WriteXpqChunkOp::Execute(ExecutionContext& ctx) const {
  XORBITS_ASSIGN_OR_RETURN(const DataFrame* df,
                           services::AsDataFrame(ctx.inputs[0]));
  char name[32];
  std::snprintf(name, sizeof(name), "part-%05lld.xpq",
                static_cast<long long>(index_));
  const std::string path = dir_ + "/" + name;
  XORBITS_RETURN_NOT_OK(io::WriteXpq(path, *df));
  DataFrame manifest;
  XORBITS_RETURN_NOT_OK(manifest.SetColumn(
      "path", dataframe::Column::String({path})));
  XORBITS_RETURN_NOT_OK(manifest.SetColumn(
      "rows", dataframe::Column::Int64({df->num_rows()})));
  ctx.outputs[0] = services::MakeChunk(std::move(manifest));
  return Status::OK();
}

TileTask WriteXpqOp::Tile(TileContext& ctx, TileableNode* node) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    co_return Status::IOError("cannot create " + dir_ + ": " + ec.message());
  }
  TileableNode* in = node->inputs[0];
  for (size_t i = 0; i < in->chunks.size(); ++i) {
    ChunkNode* written = ctx.chunk_graph()->AddNode(
        std::make_shared<WriteXpqChunkOp>(dir_, static_cast<int64_t>(i)),
        {in->chunks[i]});
    written->meta.rows = 1;
    written->meta.rows_exact = true;
    written->meta.chunk_row = static_cast<int64_t>(i);
    node->chunks.push_back(written);
  }
  node->tiled = true;
  co_return Status::OK();
}

TileTask FromDataFrameOp::Tile(TileContext& ctx, TileableNode* node) {
  const int64_t total = df_.num_rows();
  const int64_t nbytes = df_.nbytes();
  int64_t nchunks = ChooseChunkCount(ctx.config(), nbytes);
  // Engage at least the available bands for non-trivial frames.
  if (total >= 2 * ctx.config().total_bands()) {
    nchunks = std::max<int64_t>(nchunks, ctx.config().total_bands());
  }
  // Content fingerprint for the result cache: one serialize+hash of the
  // whole frame, shared by every slice, so identical frames submitted by
  // different sessions produce identical DataChunkOp cache signatures.
  // Only paid when the cache is on; without a fingerprint the slices keep
  // their pointer-identity CseSignature and opt out of cross-session reuse.
  std::string cache_fp;
  if (ctx.config().enable_result_cache) {
    auto bytes_r = io::SerializeDataFrame(df_);
    if (bytes_r.ok()) cache_fp = services::ResultCache::HashHex(*bytes_r);
  }
  for (const auto& [off, count] : SplitRows(total, nchunks)) {
    DataFrame piece = df_.SliceRows(off, count);
    const int64_t piece_bytes = piece.nbytes();
    auto op = cache_fp.empty()
                  ? std::make_shared<DataChunkOp>(
                        services::MakeChunk(std::move(piece)))
                  : std::make_shared<DataChunkOp>(
                        services::MakeChunk(std::move(piece)),
                        "df:" + cache_fp + ":" + std::to_string(off) + ":" +
                            std::to_string(count));
    ChunkNode* chunk = ctx.chunk_graph()->AddNode(std::move(op), {});
    SetPlannedMeta(chunk, count, df_.num_columns(), piece_bytes,
                   static_cast<int64_t>(node->chunks.size()));
    node->chunks.push_back(chunk);
  }
  node->est_rows = total;
  node->tiled = true;
  co_return Status::OK();
}

TileTask ReadXpqOp::Tile(TileContext& ctx, TileableNode* node) {
  auto info_r = io::ReadXpqInfo(path_);
  if (!info_r.ok()) co_return info_r.status();
  const io::XpqFileInfo& info = *info_r;
  // Planned bytes: only the pruned columns are ever read.
  int64_t bytes = 0;
  for (const auto& c : info.columns) {
    if (pruned_columns_.empty()) {
      bytes += c.nbytes;
    } else {
      for (const auto& want : pruned_columns_) {
        if (c.name == want) {
          bytes += c.nbytes;
          break;
        }
      }
    }
  }
  if (!pruned_columns_.empty()) {
    ctx.metrics()->pruned_columns +=
        static_cast<int64_t>(info.columns.size() - pruned_columns_.size());
  }
  int64_t nchunks = ChooseChunkCount(ctx.config(), bytes);
  if (info.num_rows >= 2 * ctx.config().total_bands()) {
    nchunks = std::max<int64_t>(nchunks, ctx.config().total_bands());
  }
  const int64_t ncols = pruned_columns_.empty()
                            ? static_cast<int64_t>(info.columns.size())
                            : static_cast<int64_t>(pruned_columns_.size());
  for (const auto& [off, count] : SplitRows(info.num_rows, nchunks)) {
    auto op = std::make_shared<ReadXpqChunkOp>(path_, pruned_columns_, off,
                                               count, pushed_filter_,
                                               ctx.config().dict_encode);
    ChunkNode* chunk = ctx.chunk_graph()->AddNode(std::move(op), {});
    if (pushed_filter_ != nullptr && ctx.dynamic()) {
      // Filtered row count is unknown until the chunk runs; dynamic tiling
      // will measure it (same contract as EvalOp with a filter).
      SetPlannedMeta(chunk, -1, ncols, -1,
                     static_cast<int64_t>(node->chunks.size()));
    } else {
      SetPlannedMeta(chunk, count, ncols,
                     info.num_rows > 0 ? bytes * count / info.num_rows : 0,
                     static_cast<int64_t>(node->chunks.size()));
    }
    node->chunks.push_back(chunk);
  }
  node->est_rows = info.num_rows;
  node->tiled = true;
  co_return Status::OK();
}

TileTask ReadCsvOp::Tile(TileContext& ctx, TileableNode* node) {
  auto rows_r = io::CountCsvRows(path_);
  if (!rows_r.ok()) co_return rows_r.status();
  const int64_t total = *rows_r;
  std::error_code ec;
  const int64_t file_bytes = static_cast<int64_t>(
      std::filesystem::file_size(path_, ec));
  int64_t nchunks = ChooseChunkCount(ctx.config(), ec ? -1 : file_bytes);
  if (total >= 2 * ctx.config().total_bands()) {
    nchunks = std::max<int64_t>(nchunks, ctx.config().total_bands());
  }
  for (const auto& [off, count] : SplitRows(total, nchunks)) {
    auto op = std::make_shared<ReadCsvChunkOp>(path_, parse_dates_, off,
                                               count, pushed_filter_);
    ChunkNode* chunk = ctx.chunk_graph()->AddNode(std::move(op), {});
    if (pushed_filter_ != nullptr && ctx.dynamic()) {
      SetPlannedMeta(chunk, -1, -1, -1,
                     static_cast<int64_t>(node->chunks.size()));
    } else {
      SetPlannedMeta(chunk, count, -1,
                     total > 0 ? file_bytes * count / total : 0,
                     static_cast<int64_t>(node->chunks.size()));
    }
    node->chunks.push_back(chunk);
  }
  node->est_rows = total;
  node->tiled = true;
  co_return Status::OK();
}

TileTask FromNDArrayOp::Tile(TileContext& ctx, TileableNode* node) {
  const int64_t rows = array_.rows();
  const int64_t nchunks = ChooseChunkCount(ctx.config(), array_.nbytes());
  // Same content-fingerprint arrangement as FromDataFrameOp::Tile.
  std::string cache_fp;
  if (ctx.config().enable_result_cache) {
    auto bytes_r = io::SerializeNDArray(array_);
    if (bytes_r.ok()) cache_fp = services::ResultCache::HashHex(*bytes_r);
  }
  for (const auto& [off, count] : SplitRows(rows, nchunks)) {
    NDArray piece = array_.SliceRows(off, off + count);
    const int64_t piece_bytes = piece.nbytes();
    const int64_t piece_cols = piece.cols();
    auto op = cache_fp.empty()
                  ? std::make_shared<DataChunkOp>(
                        services::MakeChunk(std::move(piece)))
                  : std::make_shared<DataChunkOp>(
                        services::MakeChunk(std::move(piece)),
                        "nd:" + cache_fp + ":" + std::to_string(off) + ":" +
                            std::to_string(count));
    ChunkNode* chunk = ctx.chunk_graph()->AddNode(std::move(op), {});
    SetPlannedMeta(chunk, count, piece_cols, piece_bytes,
                   static_cast<int64_t>(node->chunks.size()));
    node->chunks.push_back(chunk);
  }
  node->est_rows = rows;
  node->tiled = true;
  co_return Status::OK();
}

TileTask RandomTensorOp::Tile(TileContext& ctx, TileableNode* node) {
  // Auto rechunk keeps columns whole (row chunking) so downstream matmul/QR
  // blocks are tall-and-skinny without user intervention.
  std::map<int, int64_t> constraints;
  if (shape_.size() == 2) constraints[1] = shape_[1];
  auto extents_r = tiling::AutoRechunk(shape_, constraints, 8,
                                       ctx.config().chunk_store_limit);
  if (!extents_r.ok()) co_return extents_r.status();
  const std::vector<int64_t>& row_extents = (*extents_r)[0];
  const int64_t cols = shape_.size() == 2 ? shape_[1] : 1;
  uint64_t chunk_seed = seed_;
  for (int64_t rows : row_extents) {
    std::vector<int64_t> chunk_shape =
        shape_.size() == 2 ? std::vector<int64_t>{rows, cols}
                           : std::vector<int64_t>{rows};
    auto op = std::make_shared<RandomChunkOp>(std::move(chunk_shape),
                                              ++chunk_seed, dist_);
    ChunkNode* chunk = ctx.chunk_graph()->AddNode(std::move(op), {});
    SetPlannedMeta(chunk, rows, cols, rows * cols * 8,
                   static_cast<int64_t>(node->chunks.size()));
    node->chunks.push_back(chunk);
  }
  node->est_rows = shape_[0];
  node->tiled = true;
  co_return Status::OK();
}

}  // namespace xorbits::operators
