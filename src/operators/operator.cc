#include "operators/operator.h"

#include <algorithm>

namespace xorbits::operators {

std::vector<std::string> ChunkOp::InputKeys(
    const graph::ChunkNode& node) const {
  std::vector<std::string> keys;
  keys.reserve(node.inputs.size());
  for (const graph::ChunkNode* in : node.inputs) keys.push_back(in->key);
  return keys;
}

SizeEstimate EstimateChunk(const TileContext& ctx,
                           const graph::ChunkNode* chunk) {
  SizeEstimate est;
  auto meta = ctx.GetMeta(chunk);
  if (meta.ok()) {
    est.rows = meta->rows;
    est.nbytes = meta->nbytes;
    est.measured = true;
    est.exact = true;
    return est;
  }
  est.rows = chunk->meta.rows;
  est.nbytes = chunk->meta.nbytes;
  est.exact = chunk->meta.rows_exact;
  return est;
}

SizeEstimate EstimateChunks(const TileContext& ctx,
                            const std::vector<graph::ChunkNode*>& chunks) {
  SizeEstimate total;
  total.rows = 0;
  total.nbytes = 0;
  int64_t known_bytes = 0, known_count = 0;
  int64_t known_rows = 0, known_rows_count = 0;
  bool any_measured = false;
  for (const graph::ChunkNode* c : chunks) {
    SizeEstimate e = EstimateChunk(ctx, c);
    any_measured |= e.measured;
    if (e.nbytes >= 0) {
      known_bytes += e.nbytes;
      ++known_count;
    }
    if (e.rows >= 0) {
      known_rows += e.rows;
      ++known_rows_count;
    }
  }
  const int64_t n = static_cast<int64_t>(chunks.size());
  if (known_count == 0) {
    total.nbytes = -1;
  } else {
    // Extrapolate unknown chunks from the known mean.
    total.nbytes = known_bytes * n / known_count;
  }
  if (known_rows_count == 0) {
    total.rows = -1;
  } else {
    total.rows = known_rows * n / known_rows_count;
  }
  total.measured = any_measured;
  return total;
}

std::vector<std::pair<int64_t, int64_t>> SplitRows(int64_t total_rows,
                                                   int64_t target_chunks) {
  std::vector<std::pair<int64_t, int64_t>> spans;
  if (total_rows <= 0) {
    spans.emplace_back(0, 0);
    return spans;
  }
  target_chunks = std::clamp<int64_t>(target_chunks, 1, total_rows);
  const int64_t base = total_rows / target_chunks;
  const int64_t extra = total_rows % target_chunks;
  int64_t off = 0;
  for (int64_t i = 0; i < target_chunks; ++i) {
    const int64_t count = base + (i < extra ? 1 : 0);
    spans.emplace_back(off, count);
    off += count;
  }
  return spans;
}

int64_t ChooseChunkCount(const Config& config, int64_t total_bytes) {
  if (total_bytes < 0) return config.total_bands();
  const int64_t by_size =
      (total_bytes + config.chunk_store_limit - 1) / config.chunk_store_limit;
  // Primarily size-driven (chunks must respect the store limit whatever the
  // band count); the cap only bounds scheduler pressure on huge inputs.
  const int64_t cap = std::max<int64_t>(4LL * config.total_bands(), 128);
  return std::clamp<int64_t>(by_size, 1, cap);
}

}  // namespace xorbits::operators
