#ifndef XORBITS_OPERATORS_MERGE_OP_H_
#define XORBITS_OPERATORS_MERGE_OP_H_

#include <memory>
#include <string>
#include <vector>

#include "dataframe/join.h"
#include "operators/operator.h"

namespace xorbits::operators {

/// Joins one left chunk against a gathered right side (broadcast join leg).
class MergeChunkOp : public ChunkOp {
 public:
  explicit MergeChunkOp(dataframe::MergeOptions options)
      : options_(std::move(options)) {}
  const char* type_name() const override { return "Merge"; }
  Status Execute(ExecutionContext& ctx) const override;

 private:
  dataframe::MergeOptions options_;
};

/// Shuffle-reduce join: gathers hash partition `partition` from the left
/// mappers (inputs [0, left_count)) and right mappers (the rest), then
/// joins the two sides.
class MergeShuffleReduceChunkOp : public ChunkOp {
 public:
  MergeShuffleReduceChunkOp(int partition, int left_count,
                            dataframe::MergeOptions options)
      : partition_(partition),
        left_count_(left_count),
        options_(std::move(options)) {}
  const char* type_name() const override { return "Merge::reduce"; }
  std::vector<std::string> InputKeys(
      const graph::ChunkNode& node) const override;
  Status Execute(ExecutionContext& ctx) const override;

 private:
  int partition_;
  int left_count_;
  dataframe::MergeOptions options_;
};

/// df.merge: with dynamic tiling, samples both sides' real sizes and
/// broadcasts the small one (sidestepping skewed hash shuffles — the
/// TPCx-AI UC10 scenario); static engines hash-shuffle both sides, so a
/// hot key funnels everything to one reducer.
class MergeOp : public TileableOp {
 public:
  explicit MergeOp(dataframe::MergeOptions options)
      : options_(std::move(options)) {}
  const char* type_name() const override { return "MergeOp"; }
  TileTask Tile(TileContext& ctx, graph::TileableNode* node) override;
  std::optional<std::vector<std::set<std::string>>> RequiredInputColumns(
      const graph::TileableNode& node,
      const std::set<std::string>& out_columns) const override;
  const dataframe::MergeOptions& options() const { return options_; }

 private:
  dataframe::MergeOptions options_;
};

}  // namespace xorbits::operators

#endif  // XORBITS_OPERATORS_MERGE_OP_H_
