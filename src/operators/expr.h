#ifndef XORBITS_OPERATORS_EXPR_H_
#define XORBITS_OPERATORS_EXPR_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "dataframe/compute.h"
#include "dataframe/dataframe.h"

namespace xorbits::operators {

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Row-wise expression over dataframe columns. A whole tree evaluates in
/// one pass over a chunk without materializing named intermediates — the
/// in-engine analogue of numexpr/JAX fusion the paper uses for
/// operator-level fusion (§V-A).
struct Expr {
  enum class Kind {
    kColumn,     // column reference
    kLiteral,    // scalar constant
    kBinary,     // arithmetic: children[0] op children[1]
    kCompare,    // comparison -> bool
    kAnd,
    kOr,
    kNot,
    kIsIn,
    kIsNull,
    kNotNull,
    kStrContains,
    kStrStartsWith,
    kStrEndsWith,
    kYear,
    kMonth,
    kStrSlice,  // byte-range substring
    kStrUpper,
    kStrLower,
    kStrLen,
    kStrStrip,
    kStrReplace,  // str_arg -> str_arg2
    kDay,
    kQuarter,
    kWeekDay,
  };

  Kind kind;
  std::string column;                    // kColumn
  dataframe::Scalar literal;             // kLiteral
  dataframe::BinOp bin_op{};             // kBinary
  dataframe::CmpOp cmp_op{};             // kCompare
  std::string str_arg;                   // kStr*
  std::string str_arg2;                  // kStrReplace replacement
  int64_t slice_start = 0, slice_stop = 0;  // kStrSlice
  std::vector<dataframe::Scalar> in_list;  // kIsIn
  std::vector<ExprPtr> children;

  /// Column names this expression reads (for column pruning).
  void CollectColumns(std::set<std::string>* out) const;
  std::string ToString() const;
};

// --- builders ---
ExprPtr Col(std::string name);
ExprPtr Lit(dataframe::Scalar value);
ExprPtr Lit(int64_t value);
ExprPtr Lit(double value);
ExprPtr Lit(const char* value);
ExprPtr BinaryExpr(ExprPtr lhs, dataframe::BinOp op, ExprPtr rhs);
ExprPtr CompareExpr(ExprPtr lhs, dataframe::CmpOp op, ExprPtr rhs);
ExprPtr AndExpr(ExprPtr lhs, ExprPtr rhs);
ExprPtr OrExpr(ExprPtr lhs, ExprPtr rhs);
ExprPtr NotExpr(ExprPtr v);
ExprPtr IsInExpr(ExprPtr v, std::vector<dataframe::Scalar> values);
ExprPtr IsNullExpr(ExprPtr v);
ExprPtr NotNullExpr(ExprPtr v);
ExprPtr StrContainsExpr(ExprPtr v, std::string needle);
ExprPtr StrStartsWithExpr(ExprPtr v, std::string prefix);
ExprPtr StrEndsWithExpr(ExprPtr v, std::string suffix);
ExprPtr YearExpr(ExprPtr v);
ExprPtr MonthExpr(ExprPtr v);
ExprPtr StrSliceExpr(ExprPtr v, int64_t start, int64_t stop);
ExprPtr StrUpperExpr(ExprPtr v);
ExprPtr StrLowerExpr(ExprPtr v);
ExprPtr StrLenExpr(ExprPtr v);
ExprPtr StrStripExpr(ExprPtr v);
ExprPtr StrReplaceExpr(ExprPtr v, std::string from, std::string to);
ExprPtr DayExpr(ExprPtr v);
ExprPtr QuarterExpr(ExprPtr v);
ExprPtr WeekDayExpr(ExprPtr v);

/// Evaluates the expression against one chunk.
Result<dataframe::Column> EvalExpr(const dataframe::DataFrame& df,
                                   const Expr& expr);

/// Wraps `expr` over a snapshot of `df` as a lazy ColumnSource so the
/// assignment's cost is deferred to first read (DESIGN.md §10): Load(rows)
/// evaluates the expression only at the requested base rows. Valid because
/// every Expr kind is row-wise, so select-then-eval equals eval-then-select
/// byte for byte. The snapshot is restricted to the columns the expression
/// reads and shares the frame's lazy state — deferring never decodes.
/// Fails (caller evaluates eagerly instead) when the output dtype cannot be
/// probed on an empty frame.
Result<dataframe::ColumnSourcePtr> MakeDeferredExprSource(
    const dataframe::DataFrame& df, ExprPtr expr);

}  // namespace xorbits::operators

#endif  // XORBITS_OPERATORS_EXPR_H_
