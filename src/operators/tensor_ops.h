#ifndef XORBITS_OPERATORS_TENSOR_OPS_H_
#define XORBITS_OPERATORS_TENSOR_OPS_H_

#include <memory>
#include <string>
#include <vector>

#include "operators/operator.h"
#include "tensor/ndarray.h"

namespace xorbits::operators {

/// Elementwise tensor kernels (fused at chunk level).
class EwiseChunkOp : public ChunkOp {
 public:
  enum class Kind {
    kAdd, kSub, kMul, kDiv,          // binary, inputs[0] op inputs[1]
    kAddScalar, kMulScalar,          // unary with scalar operand
    kExp, kSqrt,                     // unary
  };
  explicit EwiseChunkOp(Kind kind, double scalar = 0.0)
      : kind_(kind), scalar_(scalar) {}
  const char* type_name() const override { return "TensorEwise"; }
  Status Execute(ExecutionContext& ctx) const override;

 private:
  Kind kind_;
  double scalar_;
};

/// inputs[0] (m,k) x inputs[1] (k,n).
class MatMulChunkOp : public ChunkOp {
 public:
  const char* type_name() const override { return "TensorMatMul"; }
  Status Execute(ExecutionContext& ctx) const override;
};

class TransposeChunkOp : public ChunkOp {
 public:
  const char* type_name() const override { return "TensorTranspose"; }
  Status Execute(ExecutionContext& ctx) const override;
};

/// Thin QR of one block: outputs Q (index 0) and R (index 1) — the paper's
/// two-output TensorQR of Fig. 3(a).
class QRChunkOp : public ChunkOp {
 public:
  const char* type_name() const override { return "TensorQR"; }
  int num_outputs() const override { return 2; }
  Status Execute(ExecutionContext& ctx) const override;
};

/// Sums all inputs elementwise (tree-reduce combine step).
class AddNChunkOp : public ChunkOp {
 public:
  const char* type_name() const override { return "TensorAddN"; }
  Status Execute(ExecutionContext& ctx) const override;
};

/// Normal-equation map step for distributed least squares: from a block
/// (X_i, y_i) computes the (d, d+1) block [X_i^T X_i | X_i^T y_i].
class GramChunkOp : public ChunkOp {
 public:
  const char* type_name() const override { return "Gram"; }
  Status Execute(ExecutionContext& ctx) const override;
};

/// Final solve: splits the combined gram block back into (X^T X, X^T y) and
/// returns beta via Cholesky.
class CholSolveGramChunkOp : public ChunkOp {
 public:
  const char* type_name() const override { return "CholeskySolve"; }
  Status Execute(ExecutionContext& ctx) const override;
};

/// Elementwise tileable op over tensors (zip of aligned chunk grids).
class TensorEwiseOp : public TileableOp {
 public:
  explicit TensorEwiseOp(EwiseChunkOp::Kind kind, double scalar = 0.0)
      : kind_(kind), scalar_(scalar) {}
  const char* type_name() const override { return "TensorEwiseOp"; }
  TileTask Tile(TileContext& ctx, graph::TileableNode* node) override;

 private:
  EwiseChunkOp::Kind kind_;
  double scalar_;
};

/// Distributed matmul for row-chunked A times a (gathered) small B — the
/// tall-times-small case every workload in the paper's array section uses.
class MatMulOp : public TileableOp {
 public:
  const char* type_name() const override { return "MatMulOp"; }
  TileTask Tile(TileContext& ctx, graph::TileableNode* node) override;
};

/// TSQR (Benson et al., the MapReduce QR both Xorbits and Dask implement):
/// per-block QR, stacked-R QR, then per-block Q reconstruction. Produces
/// two tileables (Q: output 0, R: output 1). With auto-rechunk (dynamic
/// engines) non-conforming chunks are merged until tall-and-skinny; static
/// engines reject them like Dask does without a manual rechunk.
class QROp : public TileableOp {
 public:
  const char* type_name() const override { return "QROp"; }
  TileTask Tile(TileContext& ctx, graph::TileableNode* node) override;

 private:
  friend class SVDOp;  // SVD composes on top of the TSQR build
  Status BuildOnce(TileContext& ctx, graph::TileableNode* node);
  bool built_ = false;
  Status build_status_ = Status::OK();
  std::vector<graph::ChunkNode*> q_chunks_;
  graph::ChunkNode* r_chunk_ = nullptr;
};

/// SVD of a gathered block: outputs U_r (0), S (1), V^T (2).
class SVDChunkOp : public ChunkOp {
 public:
  const char* type_name() const override { return "TensorSVD"; }
  int num_outputs() const override { return 3; }
  Status Execute(ExecutionContext& ctx) const override;
};

/// Distributed thin SVD built on TSQR: per-block QR, SVD of the stacked R,
/// then U = Q_blocks x U_r. Outputs U (0, row-chunked), S (1), V^T (2).
class SVDOp : public TileableOp {
 public:
  const char* type_name() const override { return "SVDOp"; }
  TileTask Tile(TileContext& ctx, graph::TileableNode* node) override;

 private:
  Status BuildOnce(TileContext& ctx, graph::TileableNode* node);
  bool built_ = false;
  Status build_status_ = Status::OK();
  std::vector<graph::ChunkNode*> u_chunks_;
  graph::ChunkNode* s_chunk_ = nullptr;
  graph::ChunkNode* vt_chunk_ = nullptr;
};

/// Distributed ordinary least squares via gram tree-reduction; output is a
/// single beta chunk. Inputs: X (row-chunked), y (row-chunked or gathered).
class LstsqOp : public TileableOp {
 public:
  const char* type_name() const override { return "LstsqOp"; }
  TileTask Tile(TileContext& ctx, graph::TileableNode* node) override;
};

/// Full-tensor sum -> 1x1 tensor (map partials + tree reduce).
class TensorSumOp : public TileableOp {
 public:
  const char* type_name() const override { return "TensorSumOp"; }
  TileTask Tile(TileContext& ctx, graph::TileableNode* node) override;
};

/// Per-chunk full reduction to a 1x1 tensor.
class SumAllChunkOp : public ChunkOp {
 public:
  const char* type_name() const override { return "TensorSumAll"; }
  Status Execute(ExecutionContext& ctx) const override;
};

}  // namespace xorbits::operators

#endif  // XORBITS_OPERATORS_TENSOR_OPS_H_
