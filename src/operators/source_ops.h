#ifndef XORBITS_OPERATORS_SOURCE_OPS_H_
#define XORBITS_OPERATORS_SOURCE_OPS_H_

#include <memory>
#include <string>
#include <vector>

#include "operators/expr.h"
#include "operators/operator.h"
#include "tensor/ndarray.h"

namespace xorbits::operators {

/// Chunk kernel that emits a payload captured at tile time (in-memory
/// sources, sliced).
class DataChunkOp : public ChunkOp {
 public:
  explicit DataChunkOp(ChunkDataPtr payload) : payload_(std::move(payload)) {}
  /// `cache_tag` is a content fingerprint of the captured slice, computed
  /// by the tiling source when the result cache is on (FromDataFrameOp
  /// hashes the serialized frame once and tags each slice with it).
  DataChunkOp(ChunkDataPtr payload, std::string cache_tag)
      : payload_(std::move(payload)), cache_tag_(std::move(cache_tag)) {}
  const char* type_name() const override { return "DataChunk"; }
  Status Execute(ExecutionContext& ctx) const override {
    ctx.outputs[0] = payload_;
    return Status::OK();
  }
  /// Payload identity: two DataChunkOps are equal only when they emit the
  /// very same captured payload (distinct tiles slice distinct pieces).
  std::optional<std::string> CseSignature() const override {
    return "data|" +
           std::to_string(reinterpret_cast<uintptr_t>(payload_.get()));
  }
  /// The pointer identity above is meaningless across sessions; only a
  /// content-fingerprinted payload may take part in cross-session reuse.
  std::optional<std::string> CacheSignature() const override {
    if (cache_tag_.empty()) return std::nullopt;
    return "data|" + cache_tag_;
  }
  std::optional<std::string> CacheSourceTag() const override {
    if (cache_tag_.empty()) return std::nullopt;
    return cache_tag_;
  }

 private:
  ChunkDataPtr payload_;
  std::string cache_tag_;  // empty => opted out of the result cache
};

/// Chunk kernel that reads a row range of selected columns from an
/// xparquet file (the fused unit of ReadParquet + pruning).
class ReadXpqChunkOp : public ChunkOp {
 public:
  ReadXpqChunkOp(std::string path, std::vector<std::string> columns,
                 int64_t row_offset, int64_t row_count,
                 ExprPtr filter = nullptr, bool dict_encode = false)
      : path_(std::move(path)),
        columns_(std::move(columns)),
        row_offset_(row_offset),
        row_count_(row_count),
        filter_(std::move(filter)),
        dict_encode_(dict_encode) {}
  const char* type_name() const override { return "ReadParquet"; }
  Status Execute(ExecutionContext& ctx) const override;
  std::optional<std::string> CseSignature() const override;
  /// CseSignature + the file's mtime/size: a rewritten input hashes to a
  /// fresh cache key instead of serving stale bytes (DESIGN.md §9).
  std::optional<std::string> CacheSignature() const override;
  std::optional<std::string> CacheSourceTag() const override { return path_; }
  /// Late variant: payload columns become XpqColumnSource thunks and the
  /// pushed filter becomes a pending selection, so a downstream consumer
  /// decodes only the columns and rows it touches. `late_` is a physical
  /// flag only — Cse/Cache signatures deliberately ignore it (same bytes).
  std::shared_ptr<ChunkOp> WithLateMaterialization() const override;

 private:
  Status ExecuteLate(ExecutionContext& ctx) const;

  std::string path_;
  std::vector<std::string> columns_;
  int64_t row_offset_;
  int64_t row_count_;
  /// Pushed-down row predicate. The kernel reads the filter columns first,
  /// evaluates the mask, and skips the remaining column blocks entirely
  /// when no row matches — the I/O saving predicate pushdown buys.
  ExprPtr filter_;  // may be null
  /// Dictionary-encode string columns as they are read (Config::dict_encode,
  /// captured at tile time — ExecutionContext carries no config).
  bool dict_encode_;
  /// Emit a lazy frame (see WithLateMaterialization).
  bool late_ = false;
};

/// Chunk kernel reading a CSV row range (dtype inference per chunk; dates
/// parsed for the configured columns).
class ReadCsvChunkOp : public ChunkOp {
 public:
  ReadCsvChunkOp(std::string path, std::vector<std::string> parse_dates,
                 int64_t skip_rows, int64_t max_rows,
                 ExprPtr filter = nullptr)
      : path_(std::move(path)),
        parse_dates_(std::move(parse_dates)),
        skip_rows_(skip_rows),
        max_rows_(max_rows),
        filter_(std::move(filter)) {}
  const char* type_name() const override { return "ReadCsv"; }
  Status Execute(ExecutionContext& ctx) const override;
  std::optional<std::string> CseSignature() const override;
  /// CseSignature + the file's mtime/size (see ReadXpqChunkOp).
  std::optional<std::string> CacheSignature() const override;
  std::optional<std::string> CacheSourceTag() const override { return path_; }

 private:
  std::string path_;
  std::vector<std::string> parse_dates_;
  int64_t skip_rows_;
  int64_t max_rows_;
  /// Pushed-down row predicate, applied after parsing (CSV is row-major,
  /// so pushdown saves downstream work, not file bytes).
  ExprPtr filter_;  // may be null
};

/// Chunk kernel generating a random tensor block.
class RandomChunkOp : public ChunkOp {
 public:
  enum class Dist { kUniform, kNormal };
  RandomChunkOp(std::vector<int64_t> shape, uint64_t seed, Dist dist)
      : shape_(std::move(shape)), seed_(seed), dist_(dist) {}
  const char* type_name() const override { return "RandomChunk"; }
  Status Execute(ExecutionContext& ctx) const override;
  std::optional<std::string> CseSignature() const override;

 private:
  std::vector<int64_t> shape_;
  uint64_t seed_;
  Dist dist_;
};

/// Tileable source over an in-memory dataframe ("from_pandas").
class FromDataFrameOp : public TileableOp {
 public:
  explicit FromDataFrameOp(dataframe::DataFrame df) : df_(std::move(df)) {}
  const char* type_name() const override { return "FromDataFrame"; }
  TileTask Tile(TileContext& ctx, graph::TileableNode* node) override;
  const dataframe::DataFrame& frame() const { return df_; }

 private:
  dataframe::DataFrame df_;
};

/// Tileable source over an xparquet file. The optimizer installs the pruned
/// column set before tiling.
class ReadXpqOp : public TileableOp {
 public:
  explicit ReadXpqOp(std::string path) : path_(std::move(path)) {}
  const char* type_name() const override { return "ReadParquetFile"; }
  TileTask Tile(TileContext& ctx, graph::TileableNode* node) override;
  void SetPrunedColumns(std::vector<std::string> columns) {
    pruned_columns_ = std::move(columns);
  }
  const std::string& path() const { return path_; }
  const std::vector<std::string>& pruned_columns() const {
    return pruned_columns_;
  }
  void SetPushedFilter(ExprPtr filter) { pushed_filter_ = std::move(filter); }
  const ExprPtr& pushed_filter() const { return pushed_filter_; }

 private:
  std::string path_;
  std::vector<std::string> pruned_columns_;  // empty => all
  ExprPtr pushed_filter_;                    // predicate pushdown; may be null
};

/// Tileable source over a CSV file.
class ReadCsvOp : public TileableOp {
 public:
  ReadCsvOp(std::string path, std::vector<std::string> parse_dates)
      : path_(std::move(path)), parse_dates_(std::move(parse_dates)) {}
  const char* type_name() const override { return "ReadCsvFile"; }
  TileTask Tile(TileContext& ctx, graph::TileableNode* node) override;
  const std::string& path() const { return path_; }
  const std::vector<std::string>& parse_dates() const { return parse_dates_; }
  void SetPushedFilter(ExprPtr filter) { pushed_filter_ = std::move(filter); }
  const ExprPtr& pushed_filter() const { return pushed_filter_; }

 private:
  std::string path_;
  std::vector<std::string> parse_dates_;
  ExprPtr pushed_filter_;  // predicate pushdown; may be null
};

/// Tileable source over an in-memory tensor.
class FromNDArrayOp : public TileableOp {
 public:
  explicit FromNDArrayOp(tensor::NDArray array) : array_(std::move(array)) {}
  const char* type_name() const override { return "FromNDArray"; }
  TileTask Tile(TileContext& ctx, graph::TileableNode* node) override;
  const tensor::NDArray& array() const { return array_; }

 private:
  tensor::NDArray array_;
};

/// Writes one chunk to `<dir>/part-<index>.xpq`; outputs a one-row
/// manifest frame (path, rows).
class WriteXpqChunkOp : public ChunkOp {
 public:
  WriteXpqChunkOp(std::string dir, int64_t index)
      : dir_(std::move(dir)), index_(index) {}
  const char* type_name() const override { return "WriteParquet"; }
  Status Execute(ExecutionContext& ctx) const override;
  /// The file format is dense; writing resolves every column anyway.
  bool ForcesDenseInput() const override { return true; }

 private:
  std::string dir_;
  int64_t index_;
};

/// Distributed parquet write: every chunk lands in its own file, in
/// parallel on the band that owns it; the output tileable is the manifest.
class WriteXpqOp : public TileableOp {
 public:
  explicit WriteXpqOp(std::string dir) : dir_(std::move(dir)) {}
  const char* type_name() const override { return "WriteParquetDir"; }
  TileTask Tile(TileContext& ctx, graph::TileableNode* node) override;

 private:
  std::string dir_;
};

/// Tileable random tensor (xorbits.numpy.random.*). Row-chunked; with
/// `force_tall_skinny`, tiling consults the auto-rechunk rule so downstream
/// QR receives valid block shapes without user rechunk calls.
class RandomTensorOp : public TileableOp {
 public:
  RandomTensorOp(std::vector<int64_t> shape, uint64_t seed,
                 RandomChunkOp::Dist dist)
      : shape_(std::move(shape)), seed_(seed), dist_(dist) {}
  const char* type_name() const override { return "RandomTensor"; }
  TileTask Tile(TileContext& ctx, graph::TileableNode* node) override;
  const std::vector<int64_t>& shape() const { return shape_; }

 private:
  std::vector<int64_t> shape_;
  uint64_t seed_;
  RandomChunkOp::Dist dist_;
};

}  // namespace xorbits::operators

#endif  // XORBITS_OPERATORS_SOURCE_OPS_H_
