#ifndef XORBITS_OPERATORS_WINDOW_OPS_H_
#define XORBITS_OPERATORS_WINDOW_OPS_H_

#include <memory>
#include <string>
#include <vector>

#include "dataframe/reshape.h"
#include "operators/operator.h"

namespace xorbits::operators {

/// Gathers the (already distributed-aggregated) long table and spreads it
/// wide — the reshape half of pivot_table.
class PivotReshapeChunkOp : public ChunkOp {
 public:
  PivotReshapeChunkOp(std::vector<std::string> index, std::string columns,
                      std::string value)
      : index_(std::move(index)),
        columns_(std::move(columns)),
        value_(std::move(value)) {}
  const char* type_name() const override { return "PivotReshape"; }
  Status Execute(ExecutionContext& ctx) const override;

 private:
  std::vector<std::string> index_;
  std::string columns_;
  std::string value_;
};

/// Local cumulative sum over one column plus that chunk's total (emitted as
/// output 1, a one-cell frame consumed by downstream offset additions).
class LocalCumSumChunkOp : public ChunkOp {
 public:
  LocalCumSumChunkOp(std::string column, std::string output)
      : column_(std::move(column)), output_(std::move(output)) {}
  const char* type_name() const override { return "CumSum::local"; }
  int num_outputs() const override { return 2; }
  Status Execute(ExecutionContext& ctx) const override;

 private:
  std::string column_;
  std::string output_;
};

/// Adds the sum of the preceding chunks' totals (inputs 1..n) to the local
/// cumsum column of input 0 — the prefix-propagation step.
class AddPrefixChunkOp : public ChunkOp {
 public:
  explicit AddPrefixChunkOp(std::string output) : output_(std::move(output)) {}
  const char* type_name() const override { return "CumSum::prefix"; }
  Status Execute(ExecutionContext& ctx) const override;

 private:
  std::string output_;
};

/// Rolling mean over one column. Input 0 is the chunk; optional input 1
/// carries the previous chunk's last window-1 rows so windows spanning the
/// chunk boundary are exact.
class RollingMeanChunkOp : public ChunkOp {
 public:
  RollingMeanChunkOp(std::string column, std::string output, int64_t window,
                     bool has_carry)
      : column_(std::move(column)),
        output_(std::move(output)),
        window_(window),
        has_carry_(has_carry) {}
  const char* type_name() const override { return "Rolling::mean"; }
  Status Execute(ExecutionContext& ctx) const override;

 private:
  std::string column_;
  std::string output_;
  int64_t window_;
  bool has_carry_;
};

/// df.pivot_table(index=..., columns=..., values=..., aggfunc=...): a
/// distributed groupby (reusing the map-combine-reduce machinery via the
/// API layer) followed by a gathered reshape. Output schema is
/// data-dependent — unknowable before execution, another operator in the
/// paper's "non-static" class.
class PivotReshapeOp : public TileableOp {
 public:
  PivotReshapeOp(std::vector<std::string> index, std::string columns,
                 std::string value)
      : index_(std::move(index)),
        columns_(std::move(columns)),
        value_(std::move(value)) {}
  const char* type_name() const override { return "PivotTable"; }
  TileTask Tile(TileContext& ctx, graph::TileableNode* node) override;

 private:
  std::vector<std::string> index_;
  std::string columns_;
  std::string value_;
};

/// df[col].cumsum(): local scans plus prefix propagation of chunk totals —
/// no gather of the data itself.
class CumSumOp : public TileableOp {
 public:
  CumSumOp(std::string column, std::string output)
      : column_(std::move(column)), output_(std::move(output)) {}
  const char* type_name() const override { return "CumSumOp"; }
  TileTask Tile(TileContext& ctx, graph::TileableNode* node) override;

 private:
  std::string column_;
  std::string output_;
};

/// df[col].rolling(window).mean(): per-chunk windows with boundary carry
/// rows from the previous chunk. Chunk row counts must be exact; dynamic
/// engines execute-to-learn, static ones fall back to a gather.
class RollingMeanOp : public TileableOp {
 public:
  RollingMeanOp(std::string column, std::string output, int64_t window)
      : column_(std::move(column)),
        output_(std::move(output)),
        window_(window) {}
  const char* type_name() const override { return "RollingOp"; }
  TileTask Tile(TileContext& ctx, graph::TileableNode* node) override;

 private:
  std::string column_;
  std::string output_;
  int64_t window_;
};

}  // namespace xorbits::operators

#endif  // XORBITS_OPERATORS_WINDOW_OPS_H_
