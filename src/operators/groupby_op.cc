#include "operators/groupby_op.h"

#include <algorithm>

#include "dataframe/kernels.h"
#include "dataframe/key_hash.h"
#include "operators/dataframe_ops.h"

namespace xorbits::operators {

using dataframe::AggSpec;
using dataframe::DataFrame;
using graph::ChunkNode;
using graph::TileableNode;

Status GroupByMapChunkOp::Execute(ExecutionContext& ctx) const {
  XORBITS_ASSIGN_OR_RETURN(const DataFrame* in,
                           services::AsDataFrame(ctx.inputs[0]));
  XORBITS_ASSIGN_OR_RETURN(
      DataFrame out,
      dataframe::GroupByAgg(*in, keys_, specs_, /*sort_keys=*/false));
  ctx.outputs[0] = services::MakeChunk(std::move(out));
  return Status::OK();
}

namespace {
Result<DataFrame> ConcatInputs(const ExecutionContext& ctx) {
  if (ctx.inputs.size() == 1) {
    XORBITS_ASSIGN_OR_RETURN(const DataFrame* in,
                             services::AsDataFrame(ctx.inputs[0]));
    return *in;
  }
  std::vector<const DataFrame*> pieces;
  for (const auto& c : ctx.inputs) {
    XORBITS_ASSIGN_OR_RETURN(const DataFrame* df, services::AsDataFrame(c));
    pieces.push_back(df);
  }
  return dataframe::Concat(pieces);
}
}  // namespace

Status GroupByCombineChunkOp::Execute(ExecutionContext& ctx) const {
  XORBITS_ASSIGN_OR_RETURN(DataFrame merged, ConcatInputs(ctx));
  XORBITS_ASSIGN_OR_RETURN(
      DataFrame out,
      dataframe::GroupByAgg(merged, keys_, specs_, /*sort_keys=*/false));
  ctx.outputs[0] = services::MakeChunk(std::move(out));
  return Status::OK();
}

Status GroupByFinalizeChunkOp::Execute(ExecutionContext& ctx) const {
  XORBITS_ASSIGN_OR_RETURN(const DataFrame* in,
                           services::AsDataFrame(ctx.inputs[0]));
  XORBITS_ASSIGN_OR_RETURN(DataFrame out,
                           dataframe::FinalizeAgg(*in, keys_, specs_));
  // Groups sorted by key, matching the pandas default.
  XORBITS_ASSIGN_OR_RETURN(
      out, dataframe::SortValues(out, keys_,
                                 std::vector<bool>(keys_.size(), true)));
  ctx.outputs[0] = services::MakeChunk(std::move(out));
  return Status::OK();
}

Status HashPartitionChunkOp::Execute(ExecutionContext& ctx) const {
  XORBITS_ASSIGN_OR_RETURN(const DataFrame* in,
                           services::AsDataFrame(ctx.inputs[0]));
  std::vector<const dataframe::Column*> key_cols;
  for (const auto& k : keys_) {
    XORBITS_ASSIGN_OR_RETURN(const dataframe::Column* c, in->GetColumn(k));
    key_cols.push_back(c);
  }
  const int64_t n = in->num_rows();
  std::vector<std::vector<int64_t>> part_rows(partitions_);
  // Typed value hash — no per-row key-bytes string. The hash is a pure
  // function of the key values (encoding-invariant), so partition routing
  // is identical whether the key columns arrive plain or dict-encoded.
  dataframe::RowHasher hasher(key_cols);
  for (int64_t i = 0; i < n; ++i) {
    part_rows[hasher.Hash(i) % partitions_].push_back(i);
  }
  for (int p = 0; p < partitions_; ++p) {
    XORBITS_RETURN_NOT_OK(ctx.EmitShufflePartition(
        p, services::MakeChunk(in->TakeRows(part_rows[p]))));
  }
  return Status::OK();
}

std::vector<std::string> GroupByShuffleReduceChunkOp::InputKeys(
    const graph::ChunkNode& node) const {
  std::vector<std::string> keys;
  for (const graph::ChunkNode* in : node.inputs) {
    keys.push_back(in->key + "@" + std::to_string(partition_));
  }
  return keys;
}

Status GroupByShuffleReduceChunkOp::Execute(ExecutionContext& ctx) const {
  XORBITS_ASSIGN_OR_RETURN(DataFrame merged, ConcatInputs(ctx));
  if (decomposed_) {
    XORBITS_ASSIGN_OR_RETURN(auto plan, dataframe::DecomposeAggs(user_specs_));
    XORBITS_ASSIGN_OR_RETURN(
        DataFrame combined,
        dataframe::GroupByAgg(merged, keys_, plan.combine_specs));
    XORBITS_ASSIGN_OR_RETURN(
        DataFrame out, dataframe::FinalizeAgg(combined, keys_, user_specs_));
    ctx.outputs[0] = services::MakeChunk(std::move(out));
    return Status::OK();
  }
  XORBITS_ASSIGN_OR_RETURN(DataFrame out,
                           dataframe::GroupByAgg(merged, keys_, user_specs_));
  ctx.outputs[0] = services::MakeChunk(std::move(out));
  return Status::OK();
}

TileTask GroupByAggOp::Tile(TileContext& ctx, TileableNode* node) {
  TileableNode* in = node->inputs[0];
  const std::vector<ChunkNode*>& raw_chunks = in->chunks;
  const bool decomposable = dataframe::IsDecomposable(specs_);

  // Non-decomposable aggregations (nunique): shuffle raw rows so each
  // reducer owns complete groups.
  if (!decomposable) {
    SizeEstimate raw_est = EstimateChunks(ctx, raw_chunks);
    if (ctx.dynamic() && raw_est.nbytes < 0 && !raw_chunks.empty()) {
      ctx.metrics()->dynamic_yields++;
      std::vector<ChunkNode*> to_run{raw_chunks[0]};
      co_yield to_run;
      raw_est = EstimateChunks(ctx, raw_chunks);
    }
    const int partitions =
        static_cast<int>(ChooseChunkCount(ctx.config(), raw_est.nbytes));
    auto part_op = std::make_shared<HashPartitionChunkOp>(keys_, partitions);
    std::vector<ChunkNode*> mappers;
    for (ChunkNode* chunk : raw_chunks) {
      mappers.push_back(ctx.chunk_graph()->AddNode(part_op, {chunk}));
    }
    for (int p = 0; p < partitions; ++p) {
      ChunkNode* red = ctx.chunk_graph()->AddNode(
          std::make_shared<GroupByShuffleReduceChunkOp>(
              p, keys_, specs_, /*decomposed=*/false),
          mappers);
      red->meta.chunk_row = p;
      node->chunks.push_back(red);
    }
    node->tiled = true;
    co_return Status::OK();
  }

  auto plan_r = dataframe::DecomposeAggs(specs_);
  if (!plan_r.ok()) co_return plan_r.status();
  const dataframe::DecomposedAgg& plan = *plan_r;

  // Map stage over every raw chunk.
  auto map_op = std::make_shared<GroupByMapChunkOp>(keys_, plan.map_specs);
  std::vector<ChunkNode*> map_nodes;
  for (ChunkNode* chunk : raw_chunks) {
    ChunkNode* m = ctx.chunk_graph()->AddNode(map_op, {chunk});
    map_nodes.push_back(m);
  }

  // Auto reduce selection (Fig. 6(a)): run the first map chunks, compare
  // aggregated size against the raw input, then decide.
  ReducePolicy policy = ctx.config().reduce_policy;
  int64_t avg_partial_bytes = -1;
  int64_t est_total_agg = -1;
  if (policy == ReducePolicy::kAuto) {
    if (ctx.dynamic() && !map_nodes.empty()) {
      const size_t sample_n = std::min<size_t>(
          map_nodes.size(),
          static_cast<size_t>(std::max(1, ctx.config().sample_chunks)));
      std::vector<ChunkNode*> sample(map_nodes.begin(),
                                     map_nodes.begin() + sample_n);
      ctx.metrics()->dynamic_yields++;
      co_yield sample;
      SizeEstimate agg_est = EstimateChunks(ctx, map_nodes);
      avg_partial_bytes =
          agg_est.nbytes >= 0
              ? agg_est.nbytes / static_cast<int64_t>(map_nodes.size())
              : -1;
      est_total_agg = agg_est.nbytes;
      policy = (est_total_agg >= 0 &&
                est_total_agg <= ctx.config().chunk_store_limit)
                   ? ReducePolicy::kTree
                   : ReducePolicy::kShuffle;
    } else {
      // Static engines cannot sample; fall back to shuffle.
      policy = ReducePolicy::kShuffle;
    }
  }

  if (policy == ReducePolicy::kTree) {
    std::vector<ChunkNode*> reduced = BuildTreeReduce(
        ctx, map_nodes, avg_partial_bytes, [this, &plan] {
          return std::make_shared<GroupByCombineChunkOp>(keys_,
                                                         plan.combine_specs);
        });
    ChunkNode* final_node = ctx.chunk_graph()->AddNode(
        std::make_shared<GroupByFinalizeChunkOp>(keys_, specs_),
        {reduced[0]});
    node->chunks.push_back(final_node);
  } else {
    // Shuffle-reduce over map partials.
    int64_t size_hint = est_total_agg;
    if (size_hint < 0) size_hint = EstimateChunks(ctx, raw_chunks).nbytes;
    const int partitions =
        static_cast<int>(ChooseChunkCount(ctx.config(), size_hint));
    auto part_op = std::make_shared<HashPartitionChunkOp>(keys_, partitions);
    std::vector<ChunkNode*> mappers;
    for (ChunkNode* m : map_nodes) {
      mappers.push_back(ctx.chunk_graph()->AddNode(part_op, {m}));
    }
    for (int p = 0; p < partitions; ++p) {
      ChunkNode* red = ctx.chunk_graph()->AddNode(
          std::make_shared<GroupByShuffleReduceChunkOp>(
              p, keys_, specs_, /*decomposed=*/true),
          mappers);
      red->meta.chunk_row = p;
      if (!ctx.dynamic() && size_hint >= 0) {
        // Static planning: aggregation outputs inherit the input scale (no
        // runtime metadata says the data shrank after aggregating).
        red->meta.nbytes = size_hint / partitions;
      }
      node->chunks.push_back(red);
    }
  }
  node->tiled = true;
  co_return Status::OK();
}

std::optional<std::vector<std::set<std::string>>>
GroupByAggOp::RequiredInputColumns(
    const graph::TileableNode& node,
    const std::set<std::string>& out_columns) const {
  std::set<std::string> need(keys_.begin(), keys_.end());
  for (const auto& s : specs_) {
    if (!s.input.empty()) need.insert(s.input);
  }
  return std::vector<std::set<std::string>>{std::move(need)};
}

}  // namespace xorbits::operators
