#include "operators/expr.h"

#include <sstream>

#include "common/late_stats.h"
#include "common/thread_pool.h"

namespace xorbits::operators {

using dataframe::BinOp;
using dataframe::CmpOp;
using dataframe::Column;
using dataframe::DataFrame;
using dataframe::Scalar;

void Expr::CollectColumns(std::set<std::string>* out) const {
  if (kind == Kind::kColumn) out->insert(column);
  for (const auto& c : children) c->CollectColumns(out);
}

std::string Expr::ToString() const {
  std::ostringstream os;
  switch (kind) {
    case Kind::kColumn: os << column; break;
    case Kind::kLiteral: os << literal.ToString(); break;
    case Kind::kBinary:
      os << "(" << children[0]->ToString() << " "
         << dataframe::BinOpName(bin_op) << " " << children[1]->ToString()
         << ")";
      break;
    case Kind::kCompare:
      os << "(" << children[0]->ToString() << " "
         << dataframe::CmpOpName(cmp_op) << " " << children[1]->ToString()
         << ")";
      break;
    case Kind::kAnd:
      os << "(" << children[0]->ToString() << " & " << children[1]->ToString()
         << ")";
      break;
    case Kind::kOr:
      os << "(" << children[0]->ToString() << " | " << children[1]->ToString()
         << ")";
      break;
    case Kind::kNot: os << "~" << children[0]->ToString(); break;
    case Kind::kIsIn: os << children[0]->ToString() << ".isin([...])"; break;
    case Kind::kIsNull: os << children[0]->ToString() << ".isnull()"; break;
    case Kind::kNotNull: os << children[0]->ToString() << ".notnull()"; break;
    case Kind::kStrContains:
      os << children[0]->ToString() << ".str.contains('" << str_arg << "')";
      break;
    case Kind::kStrStartsWith:
      os << children[0]->ToString() << ".str.startswith('" << str_arg << "')";
      break;
    case Kind::kStrEndsWith:
      os << children[0]->ToString() << ".str.endswith('" << str_arg << "')";
      break;
    case Kind::kYear: os << children[0]->ToString() << ".dt.year"; break;
    case Kind::kStrSlice:
      os << children[0]->ToString() << ".str[" << slice_start << ":"
         << slice_stop << "]";
      break;
    case Kind::kMonth: os << children[0]->ToString() << ".dt.month"; break;
    case Kind::kStrUpper: os << children[0]->ToString() << ".str.upper()"; break;
    case Kind::kStrLower: os << children[0]->ToString() << ".str.lower()"; break;
    case Kind::kStrLen: os << children[0]->ToString() << ".str.len()"; break;
    case Kind::kStrStrip: os << children[0]->ToString() << ".str.strip()"; break;
    case Kind::kStrReplace:
      os << children[0]->ToString() << ".str.replace('" << str_arg << "', '"
         << str_arg2 << "')";
      break;
    case Kind::kDay: os << children[0]->ToString() << ".dt.day"; break;
    case Kind::kQuarter:
      os << children[0]->ToString() << ".dt.quarter";
      break;
    case Kind::kWeekDay:
      os << children[0]->ToString() << ".dt.weekday";
      break;
  }
  return os.str();
}

namespace {
std::shared_ptr<Expr> MakeExpr(Expr::Kind kind) {
  auto e = std::make_shared<Expr>();
  e->kind = kind;
  return e;
}
}  // namespace

ExprPtr Col(std::string name) {
  auto e = MakeExpr(Expr::Kind::kColumn);
  e->column = std::move(name);
  return e;
}
ExprPtr Lit(Scalar value) {
  auto e = MakeExpr(Expr::Kind::kLiteral);
  e->literal = std::move(value);
  return e;
}
ExprPtr Lit(int64_t value) { return Lit(Scalar::Int(value)); }
ExprPtr Lit(double value) { return Lit(Scalar::Float(value)); }
ExprPtr Lit(const char* value) { return Lit(Scalar::Str(value)); }

ExprPtr BinaryExpr(ExprPtr lhs, BinOp op, ExprPtr rhs) {
  auto e = MakeExpr(Expr::Kind::kBinary);
  e->bin_op = op;
  e->children = {std::move(lhs), std::move(rhs)};
  return e;
}
ExprPtr CompareExpr(ExprPtr lhs, CmpOp op, ExprPtr rhs) {
  auto e = MakeExpr(Expr::Kind::kCompare);
  e->cmp_op = op;
  e->children = {std::move(lhs), std::move(rhs)};
  return e;
}
ExprPtr AndExpr(ExprPtr lhs, ExprPtr rhs) {
  auto e = MakeExpr(Expr::Kind::kAnd);
  e->children = {std::move(lhs), std::move(rhs)};
  return e;
}
ExprPtr OrExpr(ExprPtr lhs, ExprPtr rhs) {
  auto e = MakeExpr(Expr::Kind::kOr);
  e->children = {std::move(lhs), std::move(rhs)};
  return e;
}
ExprPtr NotExpr(ExprPtr v) {
  auto e = MakeExpr(Expr::Kind::kNot);
  e->children = {std::move(v)};
  return e;
}
ExprPtr IsInExpr(ExprPtr v, std::vector<Scalar> values) {
  auto e = MakeExpr(Expr::Kind::kIsIn);
  e->children = {std::move(v)};
  e->in_list = std::move(values);
  return e;
}
ExprPtr IsNullExpr(ExprPtr v) {
  auto e = MakeExpr(Expr::Kind::kIsNull);
  e->children = {std::move(v)};
  return e;
}
ExprPtr NotNullExpr(ExprPtr v) {
  auto e = MakeExpr(Expr::Kind::kNotNull);
  e->children = {std::move(v)};
  return e;
}
ExprPtr StrContainsExpr(ExprPtr v, std::string needle) {
  auto e = MakeExpr(Expr::Kind::kStrContains);
  e->children = {std::move(v)};
  e->str_arg = std::move(needle);
  return e;
}
ExprPtr StrStartsWithExpr(ExprPtr v, std::string prefix) {
  auto e = MakeExpr(Expr::Kind::kStrStartsWith);
  e->children = {std::move(v)};
  e->str_arg = std::move(prefix);
  return e;
}
ExprPtr StrEndsWithExpr(ExprPtr v, std::string suffix) {
  auto e = MakeExpr(Expr::Kind::kStrEndsWith);
  e->children = {std::move(v)};
  e->str_arg = std::move(suffix);
  return e;
}
ExprPtr YearExpr(ExprPtr v) {
  auto e = MakeExpr(Expr::Kind::kYear);
  e->children = {std::move(v)};
  return e;
}
ExprPtr MonthExpr(ExprPtr v) {
  auto e = MakeExpr(Expr::Kind::kMonth);
  e->children = {std::move(v)};
  return e;
}
ExprPtr StrSliceExpr(ExprPtr v, int64_t start, int64_t stop) {
  auto e = MakeExpr(Expr::Kind::kStrSlice);
  e->children = {std::move(v)};
  e->slice_start = start;
  e->slice_stop = stop;
  return e;
}
namespace {
ExprPtr Unary(Expr::Kind kind, ExprPtr v) {
  auto e = MakeExpr(kind);
  e->children = {std::move(v)};
  return e;
}
}  // namespace
ExprPtr StrUpperExpr(ExprPtr v) { return Unary(Expr::Kind::kStrUpper, std::move(v)); }
ExprPtr StrLowerExpr(ExprPtr v) { return Unary(Expr::Kind::kStrLower, std::move(v)); }
ExprPtr StrLenExpr(ExprPtr v) { return Unary(Expr::Kind::kStrLen, std::move(v)); }
ExprPtr StrStripExpr(ExprPtr v) { return Unary(Expr::Kind::kStrStrip, std::move(v)); }
ExprPtr StrReplaceExpr(ExprPtr v, std::string from, std::string to) {
  auto e = MakeExpr(Expr::Kind::kStrReplace);
  e->children = {std::move(v)};
  e->str_arg = std::move(from);
  e->str_arg2 = std::move(to);
  return e;
}
ExprPtr DayExpr(ExprPtr v) { return Unary(Expr::Kind::kDay, std::move(v)); }
ExprPtr QuarterExpr(ExprPtr v) { return Unary(Expr::Kind::kQuarter, std::move(v)); }
ExprPtr WeekDayExpr(ExprPtr v) { return Unary(Expr::Kind::kWeekDay, std::move(v)); }

namespace {

/// Whole-column recursive evaluation; every elementwise kernel it calls is
/// itself morsel-parallel (see dataframe/compute.cc).
Result<Column> EvalExprImpl(const DataFrame& df, const Expr& expr) {
  switch (expr.kind) {
    case Expr::Kind::kColumn: {
      XORBITS_ASSIGN_OR_RETURN(const Column* c, df.GetColumn(expr.column));
      return *c;
    }
    case Expr::Kind::kLiteral:
      return Column::Full(
          expr.literal.is_string() ? dataframe::DType::kString
          : expr.literal.is_int() ? dataframe::DType::kInt64
          : expr.literal.is_bool() ? dataframe::DType::kBool
                                   : dataframe::DType::kFloat64,
          df.num_rows(), expr.literal);
    case Expr::Kind::kBinary: {
      // Literal operands avoid materializing a constant column.
      const Expr& l = *expr.children[0];
      const Expr& r = *expr.children[1];
      if (r.kind == Expr::Kind::kLiteral) {
        XORBITS_ASSIGN_OR_RETURN(Column lc, EvalExprImpl(df, l));
        return dataframe::BinaryOpScalar(lc, r.literal, expr.bin_op);
      }
      if (l.kind == Expr::Kind::kLiteral) {
        XORBITS_ASSIGN_OR_RETURN(Column rc, EvalExprImpl(df, r));
        return dataframe::BinaryOpScalar(rc, l.literal, expr.bin_op,
                                         /*reverse=*/true);
      }
      XORBITS_ASSIGN_OR_RETURN(Column lc, EvalExprImpl(df, l));
      XORBITS_ASSIGN_OR_RETURN(Column rc, EvalExprImpl(df, r));
      return dataframe::BinaryOp(lc, rc, expr.bin_op);
    }
    case Expr::Kind::kCompare: {
      const Expr& l = *expr.children[0];
      const Expr& r = *expr.children[1];
      if (r.kind == Expr::Kind::kLiteral) {
        XORBITS_ASSIGN_OR_RETURN(Column lc, EvalExprImpl(df, l));
        return dataframe::CompareScalar(lc, r.literal, expr.cmp_op);
      }
      XORBITS_ASSIGN_OR_RETURN(Column lc, EvalExprImpl(df, l));
      XORBITS_ASSIGN_OR_RETURN(Column rc, EvalExprImpl(df, r));
      return dataframe::Compare(lc, rc, expr.cmp_op);
    }
    case Expr::Kind::kAnd: {
      XORBITS_ASSIGN_OR_RETURN(Column l, EvalExprImpl(df, *expr.children[0]));
      XORBITS_ASSIGN_OR_RETURN(Column r, EvalExprImpl(df, *expr.children[1]));
      return dataframe::And(l, r);
    }
    case Expr::Kind::kOr: {
      XORBITS_ASSIGN_OR_RETURN(Column l, EvalExprImpl(df, *expr.children[0]));
      XORBITS_ASSIGN_OR_RETURN(Column r, EvalExprImpl(df, *expr.children[1]));
      return dataframe::Or(l, r);
    }
    case Expr::Kind::kNot: {
      XORBITS_ASSIGN_OR_RETURN(Column v, EvalExprImpl(df, *expr.children[0]));
      return dataframe::Not(v);
    }
    case Expr::Kind::kIsIn: {
      XORBITS_ASSIGN_OR_RETURN(Column v, EvalExprImpl(df, *expr.children[0]));
      return dataframe::IsIn(v, expr.in_list);
    }
    case Expr::Kind::kIsNull: {
      XORBITS_ASSIGN_OR_RETURN(Column v, EvalExprImpl(df, *expr.children[0]));
      return dataframe::IsNullCol(v);
    }
    case Expr::Kind::kNotNull: {
      XORBITS_ASSIGN_OR_RETURN(Column v, EvalExprImpl(df, *expr.children[0]));
      return dataframe::NotNullCol(v);
    }
    case Expr::Kind::kStrContains: {
      XORBITS_ASSIGN_OR_RETURN(Column v, EvalExprImpl(df, *expr.children[0]));
      return dataframe::StrContains(v, expr.str_arg);
    }
    case Expr::Kind::kStrStartsWith: {
      XORBITS_ASSIGN_OR_RETURN(Column v, EvalExprImpl(df, *expr.children[0]));
      return dataframe::StrStartsWith(v, expr.str_arg);
    }
    case Expr::Kind::kStrEndsWith: {
      XORBITS_ASSIGN_OR_RETURN(Column v, EvalExprImpl(df, *expr.children[0]));
      return dataframe::StrEndsWith(v, expr.str_arg);
    }
    case Expr::Kind::kYear: {
      XORBITS_ASSIGN_OR_RETURN(Column v, EvalExprImpl(df, *expr.children[0]));
      return dataframe::Year(v);
    }
    case Expr::Kind::kMonth: {
      XORBITS_ASSIGN_OR_RETURN(Column v, EvalExprImpl(df, *expr.children[0]));
      return dataframe::Month(v);
    }
    case Expr::Kind::kStrSlice: {
      XORBITS_ASSIGN_OR_RETURN(Column v, EvalExprImpl(df, *expr.children[0]));
      return dataframe::StrSlice(v, expr.slice_start, expr.slice_stop);
    }
    case Expr::Kind::kStrUpper: {
      XORBITS_ASSIGN_OR_RETURN(Column v, EvalExprImpl(df, *expr.children[0]));
      return dataframe::StrUpper(v);
    }
    case Expr::Kind::kStrLower: {
      XORBITS_ASSIGN_OR_RETURN(Column v, EvalExprImpl(df, *expr.children[0]));
      return dataframe::StrLower(v);
    }
    case Expr::Kind::kStrLen: {
      XORBITS_ASSIGN_OR_RETURN(Column v, EvalExprImpl(df, *expr.children[0]));
      return dataframe::StrLen(v);
    }
    case Expr::Kind::kStrStrip: {
      XORBITS_ASSIGN_OR_RETURN(Column v, EvalExprImpl(df, *expr.children[0]));
      return dataframe::StrStrip(v);
    }
    case Expr::Kind::kStrReplace: {
      XORBITS_ASSIGN_OR_RETURN(Column v, EvalExprImpl(df, *expr.children[0]));
      return dataframe::StrReplace(v, expr.str_arg, expr.str_arg2);
    }
    case Expr::Kind::kDay: {
      XORBITS_ASSIGN_OR_RETURN(Column v, EvalExprImpl(df, *expr.children[0]));
      return dataframe::Day(v);
    }
    case Expr::Kind::kQuarter: {
      XORBITS_ASSIGN_OR_RETURN(Column v, EvalExprImpl(df, *expr.children[0]));
      return dataframe::Quarter(v);
    }
    case Expr::Kind::kWeekDay: {
      XORBITS_ASSIGN_OR_RETURN(Column v, EvalExprImpl(df, *expr.children[0]));
      return dataframe::WeekDay(v);
    }
  }
  return Status::Invalid("unreachable expr kind");
}

}  // namespace

Result<Column> EvalExpr(const DataFrame& df, const Expr& expr) {
  const int64_t n = df.num_rows();
  const int64_t grain = GrainForMorsels(n, 16384, 8);
  const int64_t morsels = NumMorsels(0, n, grain);
  if (morsels < 2 || expr.kind == Expr::Kind::kColumn ||
      expr.kind == Expr::Kind::kLiteral) {
    return EvalExprImpl(df, expr);
  }
  // Morsel-driven tree evaluation: project the referenced columns once,
  // then each morsel evaluates the whole expression over its row slice so
  // intermediates stay cache-sized. Slices are row-local computations and
  // concatenate in morsel order, so the result is byte-identical to the
  // whole-column path at any thread count. (Kernels invoked inside a
  // morsel run their own ParallelFor inline — no nested fan-out.)
  std::set<std::string> used;
  expr.CollectColumns(&used);
  DataFrame projected;
  for (const auto& name : used) {
    XORBITS_ASSIGN_OR_RETURN(const Column* c, df.GetColumn(name));
    XORBITS_RETURN_NOT_OK(projected.SetColumn(name, *c));
  }
  if (projected.num_columns() == 0) return EvalExprImpl(df, expr);

  std::vector<Column> parts(morsels);
  std::vector<Status> statuses(morsels, Status::OK());
  ParallelFor(0, n, grain, [&](int64_t lo, int64_t hi) {
    const int64_t m = lo / grain;
    DataFrame slice = projected.SliceRows(lo, hi - lo);
    Result<Column> r = EvalExprImpl(slice, expr);
    if (r.ok()) {
      parts[m] = std::move(*r);
    } else {
      statuses[m] = r.status();
    }
  });
  for (const Status& st : statuses) {
    XORBITS_RETURN_NOT_OK(st);
  }
  std::vector<const Column*> piece_ptrs;
  piece_ptrs.reserve(morsels);
  for (const Column& c : parts) piece_ptrs.push_back(&c);
  return Column::Concat(piece_ptrs);
}

namespace {

/// Deferred transform: an expression plus a snapshot of the columns it
/// reads. Load(rows) rebinds the snapshot's selection to exactly the rows
/// the consumer still wants and evaluates the tree there — row-wise
/// expressions commute with row selection, so this equals evaluating
/// eagerly at assignment time and gathering afterwards. The snapshot shares
/// the source frame's lazy state (sources, resolution cells), so deferring
/// an expression over a lazy read keeps the whole chain lazy.
class ExprSource : public dataframe::ColumnSource {
 public:
  ExprSource(DataFrame snapshot, ExprPtr expr, dataframe::DType dtype,
             int64_t base_rows)
      : snapshot_(std::move(snapshot)),
        expr_(std::move(expr)),
        dtype_(dtype),
        base_rows_(base_rows) {}

  dataframe::DType dtype() const override { return dtype_; }
  int64_t length() const override { return base_rows_; }
  int64_t nbytes_hint() const override {
    // Dense estimate at 8 bytes/row — exact for numeric outputs, order-of-
    // magnitude for strings; only nbytes() estimates consume this.
    return base_rows_ * 8;
  }
  std::string describe() const override {
    return "expr:" + expr_->ToString();
  }

  Result<Column> Load(const std::vector<int64_t>& rows) const override {
    return EvalExpr(snapshot_.WithSelectionRows(rows), *expr_);
  }
  Result<Column> LoadAll() const override {
    // Only reachable when the consumer frame has no pending selection,
    // which implies the snapshot has none either (selections only narrow).
    return EvalExpr(snapshot_, *expr_);
  }

 private:
  DataFrame snapshot_;
  ExprPtr expr_;
  dataframe::DType dtype_;
  int64_t base_rows_;
};

}  // namespace

Result<dataframe::ColumnSourcePtr> MakeDeferredExprSource(
    const DataFrame& df, ExprPtr expr) {
  if (!expr) return Status::Invalid("MakeDeferredExprSource: null expr");
  // Snapshot only what the expression reads; Select shares lazy state, so
  // this costs a few shared_ptr copies regardless of frame width.
  std::set<std::string> used;
  expr->CollectColumns(&used);
  std::vector<std::string> present;
  for (const auto& name : used) {
    if (!df.HasColumn(name)) {
      return Status::KeyError("MakeDeferredExprSource: no column '" + name +
                              "'");
    }
    present.push_back(name);
  }
  XORBITS_ASSIGN_OR_RETURN(DataFrame snapshot, df.Select(present));
  // Probe the output dtype on a zero-row frame — no decode, no compute.
  XORBITS_ASSIGN_OR_RETURN(Column probe,
                           EvalExpr(DataFrame::EmptyLike(snapshot), *expr));
  common::LateStats::Get().deferred_transforms.fetch_add(
      1, std::memory_order_relaxed);
  // Base length comes from the consumer frame, not the snapshot: a
  // column-less snapshot (constant expression) has no base of its own.
  return dataframe::ColumnSourcePtr(std::make_shared<ExprSource>(
      std::move(snapshot), std::move(expr), probe.dtype(), df.base_rows()));
}

}  // namespace xorbits::operators
