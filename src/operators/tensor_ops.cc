#include "operators/tensor_ops.h"

#include <algorithm>

#include "operators/dataframe_ops.h"

namespace xorbits::operators {

using graph::ChunkNode;
using graph::TileableNode;
using tensor::NDArray;

Status EwiseChunkOp::Execute(ExecutionContext& ctx) const {
  XORBITS_ASSIGN_OR_RETURN(const NDArray* a, services::AsNDArray(ctx.inputs[0]));
  switch (kind_) {
    case Kind::kAdd:
    case Kind::kSub:
    case Kind::kMul:
    case Kind::kDiv: {
      XORBITS_ASSIGN_OR_RETURN(const NDArray* b,
                               services::AsNDArray(ctx.inputs[1]));
      Result<NDArray> r = kind_ == Kind::kAdd   ? tensor::Add(*a, *b)
                          : kind_ == Kind::kSub ? tensor::Sub(*a, *b)
                          : kind_ == Kind::kMul ? tensor::Mul(*a, *b)
                                                : tensor::Div(*a, *b);
      if (!r.ok()) return r.status();
      ctx.outputs[0] = services::MakeChunk(std::move(r).MoveValue());
      return Status::OK();
    }
    case Kind::kAddScalar:
      ctx.outputs[0] = services::MakeChunk(tensor::AddScalar(*a, scalar_));
      return Status::OK();
    case Kind::kMulScalar:
      ctx.outputs[0] = services::MakeChunk(tensor::MulScalar(*a, scalar_));
      return Status::OK();
    case Kind::kExp:
      ctx.outputs[0] = services::MakeChunk(tensor::Exp(*a));
      return Status::OK();
    case Kind::kSqrt:
      ctx.outputs[0] = services::MakeChunk(tensor::Sqrt(*a));
      return Status::OK();
  }
  return Status::Invalid("unreachable ewise kind");
}

Status MatMulChunkOp::Execute(ExecutionContext& ctx) const {
  XORBITS_ASSIGN_OR_RETURN(const NDArray* a, services::AsNDArray(ctx.inputs[0]));
  XORBITS_ASSIGN_OR_RETURN(const NDArray* b, services::AsNDArray(ctx.inputs[1]));
  XORBITS_ASSIGN_OR_RETURN(NDArray out, tensor::MatMul(*a, *b));
  ctx.outputs[0] = services::MakeChunk(std::move(out));
  return Status::OK();
}

Status TransposeChunkOp::Execute(ExecutionContext& ctx) const {
  XORBITS_ASSIGN_OR_RETURN(const NDArray* a, services::AsNDArray(ctx.inputs[0]));
  XORBITS_ASSIGN_OR_RETURN(NDArray out, tensor::Transpose(*a));
  ctx.outputs[0] = services::MakeChunk(std::move(out));
  return Status::OK();
}

Status QRChunkOp::Execute(ExecutionContext& ctx) const {
  XORBITS_ASSIGN_OR_RETURN(const NDArray* a, services::AsNDArray(ctx.inputs[0]));
  NDArray q, r;
  XORBITS_RETURN_NOT_OK(tensor::QRDecompose(*a, &q, &r));
  ctx.outputs[0] = services::MakeChunk(std::move(q));
  ctx.outputs[1] = services::MakeChunk(std::move(r));
  return Status::OK();
}

Status AddNChunkOp::Execute(ExecutionContext& ctx) const {
  XORBITS_ASSIGN_OR_RETURN(const NDArray* first,
                           services::AsNDArray(ctx.inputs[0]));
  NDArray acc = *first;
  for (size_t i = 1; i < ctx.inputs.size(); ++i) {
    XORBITS_ASSIGN_OR_RETURN(const NDArray* next,
                             services::AsNDArray(ctx.inputs[i]));
    XORBITS_ASSIGN_OR_RETURN(acc, tensor::Add(acc, *next));
  }
  ctx.outputs[0] = services::MakeChunk(std::move(acc));
  return Status::OK();
}

Status GramChunkOp::Execute(ExecutionContext& ctx) const {
  XORBITS_ASSIGN_OR_RETURN(const NDArray* x, services::AsNDArray(ctx.inputs[0]));
  XORBITS_ASSIGN_OR_RETURN(const NDArray* y, services::AsNDArray(ctx.inputs[1]));
  XORBITS_ASSIGN_OR_RETURN(NDArray xt, tensor::Transpose(*x));
  XORBITS_ASSIGN_OR_RETURN(NDArray xtx, tensor::MatMul(xt, *x));
  NDArray ymat = *y;
  if (ymat.ndim() == 1) {
    XORBITS_ASSIGN_OR_RETURN(
        ymat, NDArray::FromView(ymat.data(), {ymat.rows(), 1}));
  }
  XORBITS_ASSIGN_OR_RETURN(NDArray xty, tensor::MatMul(xt, ymat));
  XORBITS_ASSIGN_OR_RETURN(NDArray gram, tensor::HStack({&xtx, &xty}));
  ctx.outputs[0] = services::MakeChunk(std::move(gram));
  return Status::OK();
}

Status CholSolveGramChunkOp::Execute(ExecutionContext& ctx) const {
  XORBITS_ASSIGN_OR_RETURN(const NDArray* gram,
                           services::AsNDArray(ctx.inputs[0]));
  const int64_t d = gram->rows();
  XORBITS_ASSIGN_OR_RETURN(NDArray xtx, gram->SliceCols(0, d));
  XORBITS_ASSIGN_OR_RETURN(NDArray xty, gram->SliceCols(d, d + 1));
  XORBITS_ASSIGN_OR_RETURN(NDArray beta, tensor::CholeskySolve(xtx, xty));
  ctx.outputs[0] = services::MakeChunk(std::move(beta));
  return Status::OK();
}

Status SVDChunkOp::Execute(ExecutionContext& ctx) const {
  XORBITS_ASSIGN_OR_RETURN(const NDArray* a, services::AsNDArray(ctx.inputs[0]));
  NDArray u, s, vt;
  XORBITS_RETURN_NOT_OK(tensor::SVDDecompose(*a, &u, &s, &vt));
  ctx.outputs[0] = services::MakeChunk(std::move(u));
  ctx.outputs[1] = services::MakeChunk(std::move(s));
  ctx.outputs[2] = services::MakeChunk(std::move(vt));
  return Status::OK();
}

Status SumAllChunkOp::Execute(ExecutionContext& ctx) const {
  XORBITS_ASSIGN_OR_RETURN(const NDArray* a, services::AsNDArray(ctx.inputs[0]));
  ctx.outputs[0] =
      services::MakeChunk(NDArray::Full({1, 1}, tensor::SumAll(*a)));
  return Status::OK();
}

TileTask TensorEwiseOp::Tile(TileContext& ctx, TileableNode* node) {
  const bool binary =
      kind_ == EwiseChunkOp::Kind::kAdd || kind_ == EwiseChunkOp::Kind::kSub ||
      kind_ == EwiseChunkOp::Kind::kMul || kind_ == EwiseChunkOp::Kind::kDiv;
  auto op = std::make_shared<EwiseChunkOp>(kind_, scalar_);
  TileableNode* a = node->inputs[0];
  if (binary) {
    TileableNode* b = node->inputs[1];
    std::vector<ChunkNode*> b_chunks = b->chunks;
    bool aligned = a->chunks.size() == b_chunks.size();
    if (aligned) {
      for (size_t i = 0; i < b_chunks.size(); ++i) {
        if (a->chunks[i]->meta.rows != b_chunks[i]->meta.rows) {
          aligned = false;
          break;
        }
      }
    }
    if (!aligned) {
      // Auto rechunk: realign the right operand to the left's row splits
      // (gather + re-slice). Static engines require matching chunks, like
      // Dask does without an explicit rechunk call.
      if (!ctx.dynamic()) {
        co_return Status::Invalid(
            "elementwise op over differently-chunked tensors; rechunk the "
            "operands");
      }
      ChunkNode* all_b =
          b_chunks.size() == 1
              ? b_chunks[0]
              : ctx.chunk_graph()->AddNode(std::make_shared<ConcatChunkOp>(),
                                           b_chunks);
      b_chunks.clear();
      int64_t off = 0;
      for (ChunkNode* ac : a->chunks) {
        if (ac->meta.rows < 0) {
          co_return Status::Invalid("ewise rechunk: unknown chunk rows");
        }
        b_chunks.push_back(ctx.chunk_graph()->AddNode(
            std::make_shared<SliceChunkOp>(off, ac->meta.rows), {all_b}));
        off += ac->meta.rows;
      }
    }
    for (size_t i = 0; i < a->chunks.size(); ++i) {
      ChunkNode* chunk =
          ctx.chunk_graph()->AddNode(op, {a->chunks[i], b_chunks[i]});
      chunk->meta = a->chunks[i]->meta;
      chunk->meta.chunk_row = static_cast<int64_t>(i);
      node->chunks.push_back(chunk);
    }
  } else {
    for (size_t i = 0; i < a->chunks.size(); ++i) {
      ChunkNode* chunk = ctx.chunk_graph()->AddNode(op, {a->chunks[i]});
      chunk->meta = a->chunks[i]->meta;
      chunk->meta.chunk_row = static_cast<int64_t>(i);
      node->chunks.push_back(chunk);
    }
  }
  node->tiled = true;
  co_return Status::OK();
}

TileTask MatMulOp::Tile(TileContext& ctx, TileableNode* node) {
  TileableNode* a = node->inputs[0];
  TileableNode* b = node->inputs[1];
  ChunkNode* rhs = b->chunks.size() == 1
                       ? b->chunks[0]
                       : ctx.chunk_graph()->AddNode(
                             std::make_shared<ConcatChunkOp>(), b->chunks);
  auto op = std::make_shared<MatMulChunkOp>();
  for (ChunkNode* chunk : a->chunks) {
    ChunkNode* out = ctx.chunk_graph()->AddNode(op, {chunk, rhs});
    out->meta.rows = chunk->meta.rows;
    out->meta.rows_exact = chunk->meta.rows_exact;
    out->meta.chunk_row = static_cast<int64_t>(node->chunks.size());
    node->chunks.push_back(out);
  }
  node->tiled = true;
  co_return Status::OK();
}

Status QROp::BuildOnce(TileContext& ctx, TileableNode* node) {
  TileableNode* in = node->inputs[0];
  std::vector<ChunkNode*> blocks = in->chunks;
  // Column count of the matrix (cols are never split by our sources).
  int64_t n = -1;
  for (ChunkNode* c : blocks) {
    if (c->meta.cols >= 0) n = std::max(n, c->meta.cols);
  }
  if (n < 0) return Status::Invalid("qr: unknown column count");
  // Tall-and-skinny requirement: every block needs rows >= cols.
  bool conforming = true;
  for (ChunkNode* c : blocks) {
    if (c->meta.rows >= 0 && c->meta.rows < n) conforming = false;
  }
  if (!conforming) {
    if (!ctx.dynamic()) {
      // Dask behaviour from the paper's Listing 1: the user must rechunk.
      return Status::Invalid(
          "qr requires tall-and-skinny chunks; rechunk the input");
    }
    // Auto rechunk: merge adjacent blocks until each has rows >= cols.
    std::vector<ChunkNode*> merged;
    std::vector<ChunkNode*> pending;
    int64_t pending_rows = 0;
    for (ChunkNode* c : blocks) {
      pending.push_back(c);
      pending_rows += std::max<int64_t>(0, c->meta.rows);
      if (pending_rows >= n) {
        ChunkNode* m = pending.size() == 1
                           ? pending[0]
                           : ctx.chunk_graph()->AddNode(
                                 std::make_shared<ConcatChunkOp>(), pending);
        m->meta.rows = pending_rows;
        m->meta.cols = n;
        merged.push_back(m);
        pending.clear();
        pending_rows = 0;
      }
    }
    if (!pending.empty()) {
      if (merged.empty()) {
        return Status::Invalid("qr: matrix has fewer rows than columns");
      }
      // Fold the remainder into the last conforming block.
      pending.push_back(merged.back());
      ChunkNode* m = ctx.chunk_graph()->AddNode(
          std::make_shared<ConcatChunkOp>(), pending);
      merged.back() = m;
    }
    blocks = std::move(merged);
  }

  // Map: per-block QR.
  auto qr_op = std::make_shared<QRChunkOp>();
  std::vector<ChunkNode*> q1s, r1s;
  for (ChunkNode* block : blocks) {
    ChunkNode* q1 = ctx.chunk_graph()->AddNode(qr_op, {block}, 0);
    ChunkNode* r1 = ctx.chunk_graph()->AddNode(qr_op, {block}, 1);
    q1->meta.rows = block->meta.rows;
    q1->meta.cols = n;
    r1->meta.rows = n;
    r1->meta.cols = n;
    r1->meta.rows_exact = true;
    q1s.push_back(q1);
    r1s.push_back(r1);
  }
  // Combine: stack R factors, QR again.
  ChunkNode* stacked = ctx.chunk_graph()->AddNode(
      std::make_shared<ConcatChunkOp>(), r1s);
  auto qr2_op = std::make_shared<QRChunkOp>();
  ChunkNode* q2 = ctx.chunk_graph()->AddNode(qr2_op, {stacked}, 0);
  ChunkNode* r_final = ctx.chunk_graph()->AddNode(qr2_op, {stacked}, 1);
  r_final->meta.rows = n;
  r_final->meta.cols = n;
  r_final->meta.rows_exact = true;
  // Reconstruct: Q_i = Q1_i * Q2[i*n:(i+1)*n].
  auto mm_op = std::make_shared<MatMulChunkOp>();
  for (size_t i = 0; i < q1s.size(); ++i) {
    ChunkNode* slice = ctx.chunk_graph()->AddNode(
        std::make_shared<SliceChunkOp>(static_cast<int64_t>(i) * n, n), {q2});
    ChunkNode* q = ctx.chunk_graph()->AddNode(mm_op, {q1s[i], slice});
    q->meta.rows = q1s[i]->meta.rows;
    q->meta.cols = n;
    q->meta.chunk_row = static_cast<int64_t>(i);
    q_chunks_.push_back(q);
  }
  r_chunk_ = r_final;
  return Status::OK();
}

Status SVDOp::BuildOnce(TileContext& ctx, TileableNode* node) {
  // TSQR first (via a private QROp over the same input), then SVD of R.
  QROp qr;
  Status qr_status = qr.BuildOnce(ctx, node);
  XORBITS_RETURN_NOT_OK(qr_status);
  auto svd_op = std::make_shared<SVDChunkOp>();
  ChunkNode* ur = ctx.chunk_graph()->AddNode(svd_op, {qr.r_chunk_}, 0);
  s_chunk_ = ctx.chunk_graph()->AddNode(svd_op, {qr.r_chunk_}, 1);
  vt_chunk_ = ctx.chunk_graph()->AddNode(svd_op, {qr.r_chunk_}, 2);
  auto mm_op = std::make_shared<MatMulChunkOp>();
  for (size_t i = 0; i < qr.q_chunks_.size(); ++i) {
    ChunkNode* u = ctx.chunk_graph()->AddNode(mm_op, {qr.q_chunks_[i], ur});
    u->meta = qr.q_chunks_[i]->meta;
    u->meta.chunk_row = static_cast<int64_t>(i);
    u_chunks_.push_back(u);
  }
  return Status::OK();
}

TileTask SVDOp::Tile(TileContext& ctx, TileableNode* node) {
  if (!built_) {
    built_ = true;
    build_status_ = BuildOnce(ctx, node);
  }
  if (!build_status_.ok()) co_return build_status_;
  if (node->output_index == 0) {
    node->chunks = u_chunks_;
  } else if (node->output_index == 1) {
    node->chunks = {s_chunk_};
  } else {
    node->chunks = {vt_chunk_};
  }
  node->tiled = true;
  co_return Status::OK();
}

TileTask QROp::Tile(TileContext& ctx, TileableNode* node) {
  if (!built_) {
    built_ = true;
    build_status_ = BuildOnce(ctx, node);
  }
  if (!build_status_.ok()) co_return build_status_;
  if (node->output_index == 0) {
    node->chunks = q_chunks_;
  } else {
    node->chunks = {r_chunk_};
  }
  node->tiled = true;
  co_return Status::OK();
}

TileTask LstsqOp::Tile(TileContext& ctx, TileableNode* node) {
  TileableNode* x = node->inputs[0];
  TileableNode* y = node->inputs[1];
  std::vector<ChunkNode*> xchunks = x->chunks;
  std::vector<ChunkNode*> ychunks = y->chunks;
  // Align y to X's row splits when the chunking differs.
  bool aligned = xchunks.size() == ychunks.size();
  if (aligned) {
    for (size_t i = 0; i < xchunks.size(); ++i) {
      if (xchunks[i]->meta.rows != ychunks[i]->meta.rows) {
        aligned = false;
        break;
      }
    }
  }
  if (!aligned) {
    ChunkNode* ally = ychunks.size() == 1
                          ? ychunks[0]
                          : ctx.chunk_graph()->AddNode(
                                std::make_shared<ConcatChunkOp>(), ychunks);
    ychunks.clear();
    int64_t off = 0;
    for (ChunkNode* xc : xchunks) {
      if (xc->meta.rows < 0) {
        co_return Status::Invalid("lstsq: unknown X chunk rows");
      }
      ChunkNode* piece = ctx.chunk_graph()->AddNode(
          std::make_shared<SliceChunkOp>(off, xc->meta.rows), {ally});
      off += xc->meta.rows;
      ychunks.push_back(piece);
    }
  }
  // Map: per-block gram; combine: tree add; final: Cholesky solve.
  auto gram_op = std::make_shared<GramChunkOp>();
  std::vector<ChunkNode*> grams;
  for (size_t i = 0; i < xchunks.size(); ++i) {
    grams.push_back(
        ctx.chunk_graph()->AddNode(gram_op, {xchunks[i], ychunks[i]}));
  }
  std::vector<ChunkNode*> reduced = BuildTreeReduce(
      ctx, std::move(grams), /*avg_chunk_bytes=*/-1,
      [] { return std::make_shared<AddNChunkOp>(); });
  ChunkNode* beta = ctx.chunk_graph()->AddNode(
      std::make_shared<CholSolveGramChunkOp>(), {reduced[0]});
  node->chunks.push_back(beta);
  node->tiled = true;
  co_return Status::OK();
}

TileTask TensorSumOp::Tile(TileContext& ctx, TileableNode* node) {
  TileableNode* in = node->inputs[0];
  auto sum_op = std::make_shared<SumAllChunkOp>();
  std::vector<ChunkNode*> partials;
  for (ChunkNode* chunk : in->chunks) {
    partials.push_back(ctx.chunk_graph()->AddNode(sum_op, {chunk}));
  }
  std::vector<ChunkNode*> reduced = BuildTreeReduce(
      ctx, std::move(partials), /*avg_chunk_bytes=*/-1,
      [] { return std::make_shared<AddNChunkOp>(); });
  node->chunks = std::move(reduced);
  node->tiled = true;
  co_return Status::OK();
}

}  // namespace xorbits::operators
