#ifndef XORBITS_OPERATORS_DATAFRAME_OPS_H_
#define XORBITS_OPERATORS_DATAFRAME_OPS_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "dataframe/kernels.h"
#include "operators/expr.h"
#include "operators/operator.h"

namespace xorbits::operators {

/// One named column assignment: output column = expression over the chunk.
struct Assignment {
  std::string name;
  ExprPtr expr;
};

/// Elementwise chunk kernel: applies assignments, then an optional filter
/// predicate, then an optional projection — one fused pass. Operator-level
/// fusion merges chains of Eval/Filter/Projection chunk ops into a single
/// instance of this class (the numexpr analogue).
class EvalChunkOp : public ChunkOp {
 public:
  EvalChunkOp(std::vector<Assignment> assignments, ExprPtr filter,
              std::vector<std::string> projection)
      : assignments_(std::move(assignments)),
        filter_(std::move(filter)),
        projection_(std::move(projection)) {}
  const char* type_name() const override { return "Eval"; }
  Status Execute(ExecutionContext& ctx) const override;

  const std::vector<Assignment>& assignments() const { return assignments_; }
  const ExprPtr& filter() const { return filter_; }
  const std::vector<std::string>& projection() const { return projection_; }
  std::optional<std::string> CseSignature() const override;
  /// Late variant: assignments become deferred ExprSources and the filter
  /// composes a pending selection instead of compacting. `late_` is a
  /// physical flag only — Cse/Cache signatures deliberately ignore it.
  std::shared_ptr<ChunkOp> WithLateMaterialization() const override;

 private:
  Status ExecuteLate(ExecutionContext& ctx) const;

  std::vector<Assignment> assignments_;
  ExprPtr filter_;  // may be null
  std::vector<std::string> projection_;  // empty => keep all
  /// Emit a lazy frame (see WithLateMaterialization).
  bool late_ = false;
};

/// Contiguous row slice of a chunk.
class SliceChunkOp : public ChunkOp {
 public:
  SliceChunkOp(int64_t offset, int64_t count)
      : offset_(offset), count_(count) {}
  const char* type_name() const override { return "Slice"; }
  Status Execute(ExecutionContext& ctx) const override;
  std::optional<std::string> CseSignature() const override {
    return "slice|" + std::to_string(offset_) + "|" + std::to_string(count_);
  }

 private:
  int64_t offset_;
  int64_t count_;
};

/// Concatenates all input chunks (dataframes by column name, tensors by
/// rows). The materialization point of the paper's auto-merge mechanism.
class ConcatChunkOp : public ChunkOp {
 public:
  const char* type_name() const override { return "Concat"; }
  Status Execute(ExecutionContext& ctx) const override;
  std::optional<std::string> CseSignature() const override {
    return "concat";
  }
  bool ForcesDenseInput() const override { return true; }
};

/// Whole-chunk sort.
class SortChunkOp : public ChunkOp {
 public:
  SortChunkOp(std::vector<std::string> by, std::vector<bool> ascending)
      : by_(std::move(by)), ascending_(std::move(ascending)) {}
  const char* type_name() const override { return "Sort"; }
  Status Execute(ExecutionContext& ctx) const override;
  bool ForcesDenseInput() const override { return true; }
  std::optional<std::string> CseSignature() const override {
    std::string sig = "sort|";
    for (const auto& k : by_) {
      sig += k;
      sig += ',';
    }
    sig += '|';
    for (bool a : ascending_) sig += a ? '1' : '0';
    return sig;
  }

 private:
  std::vector<std::string> by_;
  std::vector<bool> ascending_;
};

/// Per-chunk duplicate removal (map side of distributed drop_duplicates);
/// with multiple inputs it concatenates first (combine side).
class DedupChunkOp : public ChunkOp {
 public:
  explicit DedupChunkOp(std::vector<std::string> subset)
      : subset_(std::move(subset)) {}
  const char* type_name() const override { return "DropDuplicates"; }
  Status Execute(ExecutionContext& ctx) const override;
  bool ForcesDenseInput() const override { return true; }
  std::optional<std::string> CseSignature() const override {
    std::string sig = "dedup|";
    for (const auto& k : subset_) {
      sig += k;
      sig += ',';
    }
    return sig;
  }

 private:
  std::vector<std::string> subset_;
};

/// Extracts sort-boundary values (quantiles of the first sort key) from a
/// sample chunk; feeds RangePartitionChunkOp.
class QuantileBoundariesChunkOp : public ChunkOp {
 public:
  QuantileBoundariesChunkOp(std::string key, int partitions, bool ascending)
      : key_(std::move(key)), partitions_(partitions), ascending_(ascending) {}
  const char* type_name() const override { return "SortSample"; }
  Status Execute(ExecutionContext& ctx) const override;
  bool ForcesDenseInput() const override { return true; }

 private:
  std::string key_;
  int partitions_;
  bool ascending_;
};

/// Shuffle map for distributed sort: routes rows to range partitions by the
/// first sort key (ties always share a partition, keeping output stable).
class RangePartitionChunkOp : public ChunkOp {
 public:
  RangePartitionChunkOp(std::string key, int partitions, bool ascending)
      : key_(std::move(key)), partitions_(partitions), ascending_(ascending) {}
  const char* type_name() const override { return "RangePartition"; }
  bool fusible() const override { return false; }
  bool is_shuffle_map() const override { return true; }
  bool ForcesDenseInput() const override { return true; }
  Status Execute(ExecutionContext& ctx) const override;

 private:
  std::string key_;
  int partitions_;
  bool ascending_;
};

/// Shuffle reduce for distributed sort: gathers one range from every
/// mapper, concatenates and sorts it. Inputs 1..n are mappers; input 0 may
/// be the boundaries chunk (ignored here).
class SortMergeChunkOp : public ChunkOp {
 public:
  SortMergeChunkOp(int partition, std::vector<std::string> by,
                   std::vector<bool> ascending)
      : partition_(partition), by_(std::move(by)),
        ascending_(std::move(ascending)) {}
  const char* type_name() const override { return "SortMerge"; }
  std::vector<std::string> InputKeys(
      const graph::ChunkNode& node) const override;
  Status Execute(ExecutionContext& ctx) const override;
  bool ForcesDenseInput() const override { return true; }

 private:
  int partition_;
  std::vector<std::string> by_;
  std::vector<bool> ascending_;
};

// --- tileable ops ---

/// Elementwise tileable op (assignments / filter / projection); tiles 1:1
/// over the input's chunks.
class EvalOp : public TileableOp {
 public:
  EvalOp(std::vector<Assignment> assignments, ExprPtr filter,
         std::vector<std::string> projection)
      : assignments_(std::move(assignments)),
        filter_(std::move(filter)),
        projection_(std::move(projection)) {}
  const char* type_name() const override {
    return filter_ ? "Filter" : "Eval";
  }
  TileTask Tile(TileContext& ctx, graph::TileableNode* node) override;
  std::optional<std::vector<std::set<std::string>>> RequiredInputColumns(
      const graph::TileableNode& node,
      const std::set<std::string>& out_columns) const override;
  bool has_filter() const { return filter_ != nullptr; }
  const std::vector<Assignment>& assignments() const { return assignments_; }
  const ExprPtr& filter() const { return filter_; }
  const std::vector<std::string>& projection() const { return projection_; }

 private:
  std::vector<Assignment> assignments_;
  ExprPtr filter_;
  std::vector<std::string> projection_;
};

/// df.head(n): needs chunk row counts; unknown sizes trigger dynamic
/// yields (iterative tiling, §IV-B) or engine-specific fallbacks.
class HeadOp : public TileableOp {
 public:
  explicit HeadOp(int64_t n) : n_(n) {}
  const char* type_name() const override { return "Head"; }
  TileTask Tile(TileContext& ctx, graph::TileableNode* node) override;

 private:
  int64_t n_;
};

/// df.iloc[pos]: single positional row. The paper's running example — after
/// a filter, the owning chunk is unknowable without execution metadata
/// (Fig. 3(c)); Dask-like static engines reject it outright (Listing 1).
class ILocOp : public TileableOp {
 public:
  explicit ILocOp(int64_t pos) : pos_(pos) {}
  const char* type_name() const override { return "ILoc"; }
  TileTask Tile(TileContext& ctx, graph::TileableNode* node) override;

 private:
  int64_t pos_;
};

/// Row-wise concatenation of multiple tileables.
class ConcatOp : public TileableOp {
 public:
  const char* type_name() const override { return "ConcatFrames"; }
  TileTask Tile(TileContext& ctx, graph::TileableNode* node) override;
};

/// df.sort_values: gathers when the data is small (or the engine is
/// static), otherwise sample-based range-partition sort.
class SortValuesOp : public TileableOp {
 public:
  SortValuesOp(std::vector<std::string> by, std::vector<bool> ascending)
      : by_(std::move(by)), ascending_(std::move(ascending)) {
    if (ascending_.empty()) ascending_.assign(by_.size(), true);
  }
  const char* type_name() const override { return "SortValues"; }
  TileTask Tile(TileContext& ctx, graph::TileableNode* node) override;

 private:
  std::vector<std::string> by_;
  std::vector<bool> ascending_;
};

/// df.drop_duplicates with map + tree-combine stages.
class DropDuplicatesOp : public TileableOp {
 public:
  explicit DropDuplicatesOp(std::vector<std::string> subset)
      : subset_(std::move(subset)) {}
  const char* type_name() const override { return "DropDuplicatesOp"; }
  TileTask Tile(TileContext& ctx, graph::TileableNode* node) override;
  std::optional<std::vector<std::set<std::string>>> RequiredInputColumns(
      const graph::TileableNode& node,
      const std::set<std::string>& out_columns) const override;

 private:
  std::vector<std::string> subset_;
};

/// Builds a tree reduction over `inputs` with fan-in derived from chunk
/// sizes (the paper's auto-merge: concatenate until the configured chunk
/// limit). `make_op` creates the combine chunk op for each tree level.
std::vector<graph::ChunkNode*> BuildTreeReduce(
    TileContext& ctx, std::vector<graph::ChunkNode*> inputs,
    int64_t avg_chunk_bytes,
    const std::function<std::shared_ptr<ChunkOp>()>& make_op);

}  // namespace xorbits::operators

#endif  // XORBITS_OPERATORS_DATAFRAME_OPS_H_
