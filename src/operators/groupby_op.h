#ifndef XORBITS_OPERATORS_GROUPBY_OP_H_
#define XORBITS_OPERATORS_GROUPBY_OP_H_

#include <memory>
#include <string>
#include <vector>

#include "dataframe/groupby.h"
#include "operators/operator.h"

namespace xorbits::operators {

/// Map stage of the paper's map-combine-reduce model: per-chunk partial
/// aggregation (Fig. 3(b)'s GroupbyAgg::map). Fusible with upstream reads.
class GroupByMapChunkOp : public ChunkOp {
 public:
  GroupByMapChunkOp(std::vector<std::string> keys,
                    std::vector<dataframe::AggSpec> specs)
      : keys_(std::move(keys)), specs_(std::move(specs)) {}
  const char* type_name() const override { return "GroupByAgg::map"; }
  Status Execute(ExecutionContext& ctx) const override;

 private:
  std::vector<std::string> keys_;
  std::vector<dataframe::AggSpec> specs_;
};

/// Combine stage: concatenates partials and re-aggregates (pre-aggregation
/// that keeps any single node from being overwhelmed).
class GroupByCombineChunkOp : public ChunkOp {
 public:
  GroupByCombineChunkOp(std::vector<std::string> keys,
                        std::vector<dataframe::AggSpec> combine_specs)
      : keys_(std::move(keys)), specs_(std::move(combine_specs)) {}
  const char* type_name() const override { return "GroupByAgg::combine"; }
  Status Execute(ExecutionContext& ctx) const override;

 private:
  std::vector<std::string> keys_;
  std::vector<dataframe::AggSpec> specs_;
};

/// Reduce/finalize stage: converts combined partial columns into the
/// user-visible aggregation outputs.
class GroupByFinalizeChunkOp : public ChunkOp {
 public:
  GroupByFinalizeChunkOp(std::vector<std::string> keys,
                         std::vector<dataframe::AggSpec> user_specs)
      : keys_(std::move(keys)), specs_(std::move(user_specs)) {}
  const char* type_name() const override { return "GroupByAgg::agg"; }
  Status Execute(ExecutionContext& ctx) const override;

 private:
  std::vector<std::string> keys_;
  std::vector<dataframe::AggSpec> specs_;
};

/// Generic hash-shuffle map: routes rows to `partitions` buckets by the
/// hash of the key columns. Non-fusible (a scheduling boundary).
class HashPartitionChunkOp : public ChunkOp {
 public:
  HashPartitionChunkOp(std::vector<std::string> keys, int partitions)
      : keys_(std::move(keys)), partitions_(partitions) {}
  const char* type_name() const override { return "HashPartition"; }
  bool fusible() const override { return false; }
  bool is_shuffle_map() const override { return true; }
  /// Partitioning gathers whole rows into per-bucket frames.
  bool ForcesDenseInput() const override { return true; }
  Status Execute(ExecutionContext& ctx) const override;

 private:
  std::vector<std::string> keys_;
  int partitions_;
};

/// Shuffle-reduce for groupby: gathers one hash partition from every
/// mapper, concatenates, and aggregates. With `decomposed`, inputs are map
/// partials (combine specs + finalize); otherwise raw rows (direct agg).
class GroupByShuffleReduceChunkOp : public ChunkOp {
 public:
  GroupByShuffleReduceChunkOp(int partition, std::vector<std::string> keys,
                              std::vector<dataframe::AggSpec> user_specs,
                              bool decomposed)
      : partition_(partition),
        keys_(std::move(keys)),
        user_specs_(std::move(user_specs)),
        decomposed_(decomposed) {}
  const char* type_name() const override { return "GroupByAgg::reduce"; }
  std::vector<std::string> InputKeys(
      const graph::ChunkNode& node) const override;
  Status Execute(ExecutionContext& ctx) const override;

 private:
  int partition_;
  std::vector<std::string> keys_;
  std::vector<dataframe::AggSpec> user_specs_;
  bool decomposed_;
};

/// df.groupby(keys).agg(specs) — the flagship dynamic-tiling operator:
/// tiling samples the first map chunks, measures the aggregation ratio, and
/// picks tree- vs shuffle-reduce (auto reduce selection, Fig. 6(a)).
class GroupByAggOp : public TileableOp {
 public:
  GroupByAggOp(std::vector<std::string> keys,
               std::vector<dataframe::AggSpec> specs)
      : keys_(std::move(keys)), specs_(std::move(specs)) {}
  const char* type_name() const override { return "GroupByAgg"; }
  TileTask Tile(TileContext& ctx, graph::TileableNode* node) override;
  std::optional<std::vector<std::set<std::string>>> RequiredInputColumns(
      const graph::TileableNode& node,
      const std::set<std::string>& out_columns) const override;

  const std::vector<std::string>& keys() const { return keys_; }
  const std::vector<dataframe::AggSpec>& specs() const { return specs_; }

 private:
  std::vector<std::string> keys_;
  std::vector<dataframe::AggSpec> specs_;
};

}  // namespace xorbits::operators

#endif  // XORBITS_OPERATORS_GROUPBY_OP_H_
