#include "operators/merge_op.h"

#include <algorithm>

#include "dataframe/kernels.h"
#include "operators/dataframe_ops.h"
#include "operators/groupby_op.h"

namespace xorbits::operators {

using dataframe::DataFrame;
using dataframe::JoinType;
using dataframe::MergeOptions;
using graph::ChunkNode;
using graph::TileableNode;

Status MergeChunkOp::Execute(ExecutionContext& ctx) const {
  XORBITS_ASSIGN_OR_RETURN(const DataFrame* left,
                           services::AsDataFrame(ctx.inputs[0]));
  XORBITS_ASSIGN_OR_RETURN(const DataFrame* right,
                           services::AsDataFrame(ctx.inputs[1]));
  XORBITS_ASSIGN_OR_RETURN(DataFrame out,
                           dataframe::Merge(*left, *right, options_));
  ctx.outputs[0] = services::MakeChunk(std::move(out));
  return Status::OK();
}

std::vector<std::string> MergeShuffleReduceChunkOp::InputKeys(
    const graph::ChunkNode& node) const {
  std::vector<std::string> keys;
  for (const graph::ChunkNode* in : node.inputs) {
    keys.push_back(in->key + "@" + std::to_string(partition_));
  }
  return keys;
}

Status MergeShuffleReduceChunkOp::Execute(ExecutionContext& ctx) const {
  auto concat_range = [&](size_t begin, size_t end) -> Result<DataFrame> {
    std::vector<const DataFrame*> pieces;
    for (size_t i = begin; i < end; ++i) {
      XORBITS_ASSIGN_OR_RETURN(const DataFrame* df,
                               services::AsDataFrame(ctx.inputs[i]));
      pieces.push_back(df);
    }
    return dataframe::Concat(pieces);
  };
  XORBITS_ASSIGN_OR_RETURN(DataFrame left, concat_range(0, left_count_));
  XORBITS_ASSIGN_OR_RETURN(DataFrame right,
                           concat_range(left_count_, ctx.inputs.size()));
  XORBITS_ASSIGN_OR_RETURN(DataFrame out,
                           dataframe::Merge(left, right, options_));
  ctx.outputs[0] = services::MakeChunk(std::move(out));
  return Status::OK();
}

TileTask MergeOp::Tile(TileContext& ctx, TileableNode* node) {
  TileableNode* left = node->inputs[0];
  TileableNode* right = node->inputs[1];
  std::vector<ChunkNode*> lchunks = left->chunks;
  std::vector<ChunkNode*> rchunks = right->chunks;

  // Trivial case: both sides single-chunk — join directly.
  if (lchunks.size() == 1 && rchunks.size() == 1) {
    ChunkNode* joined = ctx.chunk_graph()->AddNode(
        std::make_shared<MergeChunkOp>(options_), {lchunks[0], rchunks[0]});
    node->chunks.push_back(joined);
    node->tiled = true;
    co_return Status::OK();
  }

  SizeEstimate lest = EstimateChunks(ctx, lchunks);
  SizeEstimate rest = EstimateChunks(ctx, rchunks);
  if (ctx.dynamic()) {
    // Sample whichever side's real size is unknown (paper §IV-B: merge is a
    // default dynamic-tiling operator).
    std::vector<ChunkNode*> sample;
    if (lest.nbytes < 0 && !lchunks.empty()) sample.push_back(lchunks[0]);
    if (rest.nbytes < 0 && !rchunks.empty()) sample.push_back(rchunks[0]);
    if (!sample.empty()) {
      ctx.metrics()->dynamic_yields++;
      co_yield sample;
      lest = EstimateChunks(ctx, lchunks);
      rest = EstimateChunks(ctx, rchunks);
    }
    // A side worth broadcasting may be a few chunks large: replicating it
    // to every band is still far cheaper than hash-shuffling the big side.
    const int64_t broadcast_limit = 4 * ctx.config().chunk_store_limit;
    const bool can_broadcast_right =
        rest.nbytes >= 0 && rest.nbytes <= broadcast_limit &&
        (options_.how == JoinType::kInner || options_.how == JoinType::kLeft);
    const bool can_broadcast_left =
        lest.nbytes >= 0 && lest.nbytes <= broadcast_limit &&
        (options_.how == JoinType::kInner ||
         options_.how == JoinType::kRight);
    if (can_broadcast_right || can_broadcast_left) {
      // Broadcast the small side; join every chunk of the big side locally.
      const bool bcast_right =
          can_broadcast_right &&
          (!can_broadcast_left || rest.nbytes <= lest.nbytes);
      std::vector<ChunkNode*>& big = bcast_right ? lchunks : rchunks;
      std::vector<ChunkNode*>& small = bcast_right ? rchunks : lchunks;
      ChunkNode* gathered =
          small.size() == 1
              ? small[0]
              : ctx.chunk_graph()->AddNode(std::make_shared<ConcatChunkOp>(),
                                           small);
      MergeOptions opts = options_;
      if (!bcast_right) {
        // The broadcast leg keeps the big side on the left.
        std::swap(opts.left_on, opts.right_on);
        std::swap(opts.suffix_left, opts.suffix_right);
        if (opts.how == JoinType::kRight) opts.how = JoinType::kLeft;
      }
      auto join_op = std::make_shared<MergeChunkOp>(opts);
      for (ChunkNode* chunk : big) {
        ChunkNode* joined =
            ctx.chunk_graph()->AddNode(join_op, {chunk, gathered});
        joined->meta.chunk_row = static_cast<int64_t>(node->chunks.size());
        node->chunks.push_back(joined);
      }
      node->tiled = true;
      co_return Status::OK();
    }
  }

  // Hash-shuffle both sides. Static engines always land here; a hot join
  // key sends the bulk of the rows to a single reducer (the skew failure
  // of Fig. 8(a)'s UC10 discussion).
  std::vector<std::string> lkeys =
      options_.left_on.empty() ? options_.on : options_.left_on;
  std::vector<std::string> rkeys =
      options_.right_on.empty() ? options_.on : options_.right_on;
  int64_t size_hint = std::max(lest.nbytes, rest.nbytes);
  const int partitions =
      static_cast<int>(ChooseChunkCount(ctx.config(), size_hint));
  auto lpart = std::make_shared<HashPartitionChunkOp>(lkeys, partitions);
  auto rpart = std::make_shared<HashPartitionChunkOp>(rkeys, partitions);
  std::vector<ChunkNode*> mappers;
  for (ChunkNode* chunk : lchunks) {
    mappers.push_back(ctx.chunk_graph()->AddNode(lpart, {chunk}));
  }
  const int left_count = static_cast<int>(mappers.size());
  for (ChunkNode* chunk : rchunks) {
    mappers.push_back(ctx.chunk_graph()->AddNode(rpart, {chunk}));
  }
  for (int p = 0; p < partitions; ++p) {
    ChunkNode* red = ctx.chunk_graph()->AddNode(
        std::make_shared<MergeShuffleReduceChunkOp>(p, left_count, options_),
        mappers);
    red->meta.chunk_row = p;
    if (!ctx.dynamic()) {
      // Static planning sizes every stage from the initial-source
      // estimates (paper §I) — join outputs inherit the inputs' scale, so
      // downstream stages keep shuffling at full width.
      if (lest.nbytes >= 0 || rest.nbytes >= 0) {
        red->meta.nbytes =
            (std::max<int64_t>(lest.nbytes, 0) +
             std::max<int64_t>(rest.nbytes, 0)) /
            partitions;
        red->meta.rows = (std::max<int64_t>(lest.rows, 0) +
                          std::max<int64_t>(rest.rows, 0)) /
                         partitions;
      }
    }
    node->chunks.push_back(red);
  }
  node->tiled = true;
  co_return Status::OK();
}

std::optional<std::vector<std::set<std::string>>>
MergeOp::RequiredInputColumns(const graph::TileableNode& node,
                              const std::set<std::string>& out_columns) const {
  // Columns required from left/right: the join keys plus whatever outputs
  // each side contributes. Suffixed outputs map back to their base name.
  auto strip = [](const std::string& name, const std::string& suffix) {
    if (suffix.empty() || name.size() <= suffix.size()) return name;
    if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
        0) {
      return name.substr(0, name.size() - suffix.size());
    }
    return name;
  };
  std::set<std::string> lneed, rneed;
  const auto& lkeys = options_.left_on.empty() ? options_.on
                                               : options_.left_on;
  const auto& rkeys = options_.right_on.empty() ? options_.on
                                                : options_.right_on;
  lneed.insert(lkeys.begin(), lkeys.end());
  rneed.insert(rkeys.begin(), rkeys.end());
  for (const std::string& c : out_columns) {
    lneed.insert(strip(c, options_.suffix_left));
    rneed.insert(strip(c, options_.suffix_right));
  }
  // Intersect with each side's known schema (unknown names are dropped by
  // the pruning pass when it sees the input's column list).
  return std::vector<std::set<std::string>>{std::move(lneed),
                                            std::move(rneed)};
}

}  // namespace xorbits::operators
