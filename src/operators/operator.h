#ifndef XORBITS_OPERATORS_OPERATOR_H_
#define XORBITS_OPERATORS_OPERATOR_H_

#include <coroutine>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/metrics.h"
#include "common/result.h"
#include "graph/graph.h"
#include "services/chunk_data.h"
#include "services/meta_service.h"

namespace xorbits::operators {

using services::ChunkDataPtr;

/// Everything a chunk kernel sees while running on a worker: fetched input
/// payloads, slots for its outputs, and (for shuffle mappers) a partition
/// output map. Mirrors the `ctx` dict of the paper's execute method.
struct ExecutionContext {
  /// Streaming destination for shuffle partitions (DESIGN.md §11). When the
  /// executor runs a shuffle mapper under the pipelined exchange it plants
  /// one of these, and each partition leaves the mapper the moment it is
  /// cut — blocked, compressed, and sealed mid-subtask — instead of
  /// accumulating in shuffle_outputs until the subtask ends.
  class ShuffleSink {
   public:
    virtual ~ShuffleSink() = default;
    virtual Status Emit(int partition, ChunkDataPtr data) = 0;
  };

  const graph::ChunkNode* node = nullptr;
  std::vector<ChunkDataPtr> inputs;
  std::vector<ChunkDataPtr> outputs;
  /// partition id -> payload, published as "<key>@<partition>".
  std::map<int, ChunkDataPtr> shuffle_outputs;
  /// Non-null only for shuffle mappers under the pipelined exchange.
  ShuffleSink* shuffle_sink = nullptr;
  int band = 0;
  /// Run counters (source_bytes_read, ...); null in bare kernel tests.
  Metrics* metrics = nullptr;

  /// How mapper kernels hand off a finished partition: streams through the
  /// sink when one is planted, otherwise buffers in shuffle_outputs (the
  /// eager path — byte-identical results either way).
  Status EmitShufflePartition(int partition, ChunkDataPtr data) {
    if (shuffle_sink != nullptr) {
      return shuffle_sink->Emit(partition, std::move(data));
    }
    shuffle_outputs[partition] = std::move(data);
    return Status::OK();
  }
};

/// Chunk-level operator: the `execute` side of the paper's operator triple.
/// Instances are immutable after construction and shared between the chunk
/// graph and the executor.
class ChunkOp : public graph::OperatorBase {
 public:
  virtual Status Execute(ExecutionContext& ctx) const = 0;
  virtual int num_outputs() const { return 1; }
  /// Storage keys to fetch for `node`'s inputs; shuffle reducers override
  /// this to address per-partition keys.
  virtual std::vector<std::string> InputKeys(
      const graph::ChunkNode& node) const;
  /// True when Execute fills shuffle_outputs instead of outputs.
  virtual bool is_shuffle_map() const { return false; }
  /// Value-identity signature for common-subexpression elimination: two
  /// nodes whose ops return the same signature, and whose inputs and
  /// output_index match, produce identical payloads and may be merged.
  /// nullopt (the default) opts the op out of CSE — only pure, determinis-
  /// tic kernels whose parameters are fully captured should return one.
  virtual std::optional<std::string> CseSignature() const {
    return std::nullopt;
  }
  /// Signature for the cross-session result cache (DESIGN.md §9). Stricter
  /// contract than CseSignature: the string must identify the op's output
  /// bytes across *sessions and processes*, so process-local identities
  /// (pointers, session-scoped ids) are banned, and source ops must fold
  /// in external-state versions (file mtime+size) so a changed input hashes
  /// to a fresh key instead of serving stale bytes. Defaults to
  /// CseSignature, which is already value-based for every built-in op
  /// except the in-memory data source (it opts out / re-tags — see
  /// DataChunkOp). nullopt excludes the node and all its descendants.
  virtual std::optional<std::string> CacheSignature() const {
    return CseSignature();
  }
  /// Name of the external source this op reads, if any: the invalidation
  /// handle for the result cache. File sources return their path; content-
  /// fingerprinted in-memory sources return their tag. A cached entry
  /// carries the union of its sub-plan's source tags, and
  /// ResultCache::Invalidate(tag) eagerly drops everything derived from
  /// that source (DESIGN.md §9).
  virtual std::optional<std::string> CacheSourceTag() const {
    return std::nullopt;
  }
  /// Late-materialization rewrite hook (DESIGN.md §10): a copy of this op
  /// that emits selection-carrying / lazily-sourced frames instead of dense
  /// ones, or nullptr when the op has no late variant. The rewrite is
  /// physical only — the logical output is identical — so Cse/Cache
  /// signatures of the late copy must not change.
  virtual std::shared_ptr<ChunkOp> WithLateMaterialization() const {
    return nullptr;
  }
  /// True when this op's kernel genuinely needs dense input frames (it
  /// reorders or repartitions whole rows: sort, concat, shuffle partition,
  /// file write). The optimizer keeps producers eager when every consumer
  /// forces density anyway — the deferral would be pure overhead.
  virtual bool ForcesDenseInput() const { return false; }
};

/// What a tile coroutine hands to the driver when it needs metadata: run
/// these chunks (and their pending ancestors), record their meta, resume me.
struct TileYield {
  std::vector<graph::ChunkNode*> chunks;
};

/// C++20 coroutine return type for Operator::tile — the analogue of the
/// Python generator in the paper's Fig. 5(b). `co_yield TileYield{chunks}`
/// suspends tiling so the driver can execute the partial graph;
/// `co_return status` finishes.
class TileTask {
 public:
  struct promise_type {
    TileYield pending;
    Status result = Status::OK();

    TileTask get_return_object() {
      return TileTask(Handle::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    /// Accepts the chunk vector directly (not a TileYield temporary):
    /// gcc 12's coroutine codegen miscompiles aggregate operands of
    /// co_yield (double-free of the moved-from buffer).
    std::suspend_always yield_value(std::vector<graph::ChunkNode*> chunks) {
      pending.chunks = std::move(chunks);
      return {};
    }
    void return_value(Status s) { result = std::move(s); }
    void unhandled_exception() {
      result = Status::ExecutionError("uncaught exception during tile");
    }
  };
  using Handle = std::coroutine_handle<promise_type>;

  explicit TileTask(Handle handle) : handle_(handle) {}
  TileTask(TileTask&& other) noexcept : handle_(other.handle_) {
    other.handle_ = nullptr;
  }
  TileTask& operator=(TileTask&& other) noexcept {
    if (this != &other) {
      if (handle_) handle_.destroy();
      handle_ = other.handle_;
      other.handle_ = nullptr;
    }
    return *this;
  }
  TileTask(const TileTask&) = delete;
  TileTask& operator=(const TileTask&) = delete;
  ~TileTask() {
    if (handle_) handle_.destroy();
  }

  /// Advances the coroutine; returns true if it yielded (needs execution),
  /// false if it finished.
  bool Resume() {
    handle_.resume();
    return !handle_.done();
  }
  bool done() const { return handle_.done(); }
  TileYield& pending() { return handle_.promise().pending; }
  const Status& result() const { return handle_.promise().result; }

 private:
  Handle handle_ = nullptr;
};

/// Supervisor-side state a tile coroutine works against: the growing chunk
/// graph, the meta service (for metadata of already-executed chunks), and
/// the engine configuration that decides dynamic vs. static behaviour.
class TileContext {
 public:
  TileContext(const Config& config, services::MetaService* meta,
              graph::ChunkGraph* chunk_graph, Metrics* metrics)
      : config_(config),
        meta_(meta),
        chunk_graph_(chunk_graph),
        metrics_(metrics) {}

  const Config& config() const { return config_; }
  /// True when tile may co_yield to trigger execution (the paper's core
  /// mechanism); false reproduces static-planning baselines.
  bool dynamic() const { return config_.dynamic_tiling; }
  graph::ChunkGraph* chunk_graph() { return chunk_graph_; }
  services::MetaService* meta() { return meta_; }
  Metrics* metrics() { return metrics_; }

  /// Meta of an executed chunk, by its storage key.
  Result<services::ChunkMeta> GetMeta(const graph::ChunkNode* node) const {
    return meta_->Get(node->key);
  }

 private:
  const Config& config_;
  services::MetaService* meta_;
  graph::ChunkGraph* chunk_graph_;
  Metrics* metrics_;
};

/// Tileable-level operator: owns parameters and implements `tile` (chunk
/// graph construction, possibly yielding). The `__call__` side lives in the
/// public API layer, which creates TileableNodes referencing these ops.
class TileableOp : public graph::OperatorBase {
 public:
  virtual TileTask Tile(TileContext& ctx, graph::TileableNode* node) = 0;

  /// Column-pruning hook: given the columns required from this op's output,
  /// the columns required from each input (nullopt = everything). Sources
  /// additionally accept the pruned set via SetPrunedColumns overrides.
  virtual std::optional<std::vector<std::set<std::string>>>
  RequiredInputColumns(const graph::TileableNode& node,
                       const std::set<std::string>& out_columns) const {
    return std::nullopt;
  }
};

// --- shared tiling helpers ---

/// Rows and bytes of a chunk, from recorded meta if executed, otherwise
/// from planning estimates on the node.
struct SizeEstimate {
  int64_t rows = -1;
  int64_t nbytes = -1;
  bool measured = false;
  /// Row count is trustworthy for positional indexing.
  bool exact = false;
};
SizeEstimate EstimateChunk(const TileContext& ctx,
                           const graph::ChunkNode* chunk);

/// Sum over chunks; unknown sizes extrapolate from the measured/estimated
/// mean (the metadata-driven sizing at the heart of auto reduce selection).
SizeEstimate EstimateChunks(const TileContext& ctx,
                            const std::vector<graph::ChunkNode*>& chunks);

/// Splits `total_rows` into near-equal spans no larger than needed for
/// `target_chunks` chunks. Returns (offset, count) pairs.
std::vector<std::pair<int64_t, int64_t>> SplitRows(int64_t total_rows,
                                                   int64_t target_chunks);

/// Number of chunks for a payload of `total_bytes` under the configured
/// chunk store limit, clamped to [1, 4 * total_bands].
int64_t ChooseChunkCount(const Config& config, int64_t total_bytes);

}  // namespace xorbits::operators

#endif  // XORBITS_OPERATORS_OPERATOR_H_
