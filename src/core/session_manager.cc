#include "core/session_manager.h"

#include <algorithm>
#include <chrono>
#include <string>

#include "common/trace_names.h"
#include "common/tracing.h"
#include "core/session.h"

namespace xorbits::core {

namespace {

/// Registers the shared cluster with the trace sink (when configured) so
/// cluster-level services emit under one process; tenant sessions register
/// their own processes on top (see Session's constructor).
Config RegisterClusterTraceProcess(Config config) {
  if (config.trace.sink != nullptr && config.trace.pid == 0) {
    config.trace.pid = config.trace.sink->RegisterProcess(
        std::string(EngineKindName(config.engine)) + " cluster",
        config.total_bands());
  }
  return config;
}

}  // namespace

Result<std::unique_ptr<SessionManager>> SessionManager::Create(Config config) {
  XORBITS_RETURN_NOT_OK(
      config.Validate().WithContext("creating a session manager"));
  return std::unique_ptr<SessionManager>(
      new SessionManager(std::move(config)));
}

SessionManager::SessionManager(Config config)
    : config_(RegisterClusterTraceProcess(std::move(config))),
      storage_(std::make_unique<services::StorageService>(config_,
                                                          &metrics_)),
      executor_(std::make_unique<scheduler::Executor>(
          config_, &metrics_, storage_.get(), &meta_)),
      sessions_active_(metrics_.registry.GetGauge(trace::kGaugeSessionsActive,
                                                  "sessions")),
      sessions_shed_(metrics_.registry.GetGauge(trace::kGaugeSessionsShed,
                                                "submissions")),
      queue_wait_us_(metrics_.registry.GetHistogram(
          trace::kHistSessionQueueWaitUs, "us", DefaultBuckets())) {
  meta_.BindObservability(&metrics_);
  if (config_.enable_result_cache) {
    result_cache_ = std::make_unique<services::ResultCache>(
        config_, storage_.get(), &metrics_);
    executor_->set_result_cache(result_cache_.get());
  }
}

SessionManager::~SessionManager() {
  if (config_.trace.sink != nullptr) {
    config_.trace.sink->SetProcessMetrics(config_.trace.pid,
                                          metrics_.Snapshot());
  }
}

std::unique_ptr<Session> SessionManager::CreateSession(
    SessionOptions options) {
  int64_t id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = next_session_id_++;
    ++open_sessions_;
    sessions_active_->Set(open_sessions_);
  }
  Config session_config = config_;
  // Each session registers its own trace process, so run reports render
  // per-tenant latency next to the shared cluster's storage counters.
  session_config.trace.pid = 0;
  if (options.priority > 0) session_config.session_priority = options.priority;
  if (options.max_inflight > 0) {
    session_config.session_max_inflight = options.max_inflight;
  }
  if (Tracer* tr = config_.trace.sink) {
    tr->Instant(config_.trace.pid, kTrackSupervisor, trace::kEventSessionCreate,
                {Arg("session", id),
                 Arg("priority",
                     static_cast<int64_t>(session_config.session_priority))});
  }
  return std::make_unique<Session>(this, std::move(session_config), id);
}

Status SessionManager::Admit(int64_t session_id, int64_t estimated_bytes) {
  const int64_t capacity =
      static_cast<int64_t>(config_.total_bands()) * config_.band_memory_limit;
  // The estimate only arbitrates between concurrent submissions; clamp it so
  // a wild projection cannot deadlock admission outright.
  estimated_bytes = std::clamp<int64_t>(estimated_bytes, 0, capacity);
  const auto enqueue_time = std::chrono::steady_clock::now();

  std::unique_lock<std::mutex> lock(mu_);
  const auto admissible = [&] {
    // An idle cluster always admits: a lone submission must make progress
    // even when its estimate exceeds capacity (spill absorbs the excess).
    if (running_ == 0) return true;
    if (config_.max_concurrent_sessions > 0 &&
        running_ >= config_.max_concurrent_sessions) {
      return false;
    }
    return reserved_bytes_ + estimated_bytes <= capacity;
  };
  const auto shed = [&](const char* why) {
    // Backoff hint grows with queue pressure, so retrying clients spread
    // out instead of stampeding the moment one slot frees up.
    const int64_t hint_ms =
        std::min<int64_t>(5 * (static_cast<int64_t>(waiters_) + 1), 100);
    sessions_shed_->Add(1);
    if (Tracer* tr = config_.trace.sink) {
      tr->Instant(config_.trace.pid, kTrackSupervisor,
                  trace::kEventSessionShed,
                  {Arg("session", session_id), Arg("why", why),
                   Arg("backoff_hint_ms", hint_ms)});
    }
    return Status::Overloaded(
        std::string("admission ") + why + " for session " +
            std::to_string(session_id) + " (" + std::to_string(running_) +
            " running, " + std::to_string(waiters_) + " queued)",
        hint_ms);
  };

  if (!admissible()) {
    if (waiters_ >= config_.admission_queue_depth) {
      return shed("queue full");
    }
    ++waiters_;
    const bool admitted = admit_cv_.wait_for(
        lock, std::chrono::milliseconds(config_.admission_timeout_ms),
        admissible);
    --waiters_;
    if (!admitted) return shed("wait timed out");
  }
  ++running_;
  reserved_bytes_ += estimated_bytes;
  admitted_bytes_[session_id] = estimated_bytes;
  queue_wait_us_->Observe(std::chrono::duration_cast<std::chrono::microseconds>(
                              std::chrono::steady_clock::now() - enqueue_time)
                              .count());
  return Status::OK();
}

void SessionManager::Release(int64_t session_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = admitted_bytes_.find(session_id);
  if (it == admitted_bytes_.end()) return;
  reserved_bytes_ -= it->second;
  admitted_bytes_.erase(it);
  --running_;
  // Several waiters may now fit (bytes freed can cover more than one
  // estimate), so wake them all and let the predicate sort it out.
  admit_cv_.notify_all();
}

void SessionManager::OnSessionClose(int64_t session_id) {
  const std::string prefix = "s" + std::to_string(session_id) + "/";
  storage_->DeleteByPrefix(prefix);
  meta_.DeleteByPrefix(prefix);
  // Cache lineage registered by this session points into its (now dying)
  // chunk-graph arena; sweep it by session tag. The cached "cache/" chunks
  // themselves deliberately survive — they are cluster property, and the
  // next session to hit one re-registers lineage against its own graph.
  meta_.DeleteLineageBySession(session_id);
  if (Tracer* tr = config_.trace.sink) {
    tr->Instant(config_.trace.pid, kTrackSupervisor, trace::kEventSessionClose,
                {Arg("session", session_id)});
  }
  std::lock_guard<std::mutex> lock(mu_);
  --open_sessions_;
  sessions_active_->Set(open_sessions_);
}

}  // namespace xorbits::core
