#include "core/xorbits.h"

#include <algorithm>
#include <set>

#include "io/csv.h"
#include "io/xparquet.h"
#include "operators/dataframe_ops.h"
#include "operators/groupby_op.h"
#include "operators/merge_op.h"
#include "operators/source_ops.h"
#include "operators/tensor_ops.h"
#include "operators/window_ops.h"
#include "io/csv.h"

namespace xorbits {

using dataframe::AggSpec;
using dataframe::MergeOptions;
using graph::TileableNode;
using operators::Assignment;
using operators::ExprPtr;

namespace {

Status CheckValid(const DataFrameRef& ref) {
  if (!ref.valid()) return Status::Invalid("operation on invalid dataframe");
  return Status::OK();
}

Status CheckColumns(const DataFrameRef& ref,
                    const std::vector<std::string>& names) {
  for (const auto& n : names) {
    if (!ref.HasColumn(n)) {
      return Status::KeyError("no column named '" + n + "'");
    }
  }
  return Status::OK();
}

Status CheckExprColumns(const DataFrameRef& ref, const operators::Expr& e) {
  std::set<std::string> used;
  e.CollectColumns(&used);
  return CheckColumns(ref, {used.begin(), used.end()});
}

}  // namespace

bool DataFrameRef::HasColumn(const std::string& name) const {
  for (const auto& c : node_->columns) {
    if (c == name) return true;
  }
  return false;
}

Result<DataFrameRef> DataFrameRef::Assign(const std::string& name,
                                          ExprPtr expr) const {
  return WithColumns({{name, std::move(expr)}});
}

Result<DataFrameRef> DataFrameRef::WithColumns(
    const std::vector<std::pair<std::string, ExprPtr>>& cols) const {
  XORBITS_RETURN_NOT_OK(CheckValid(*this));
  std::vector<Assignment> assignments;
  std::vector<std::string> out_columns = node_->columns;
  for (const auto& [name, expr] : cols) {
    XORBITS_RETURN_NOT_OK(CheckExprColumns(*this, *expr));
    assignments.push_back({name, expr});
    if (std::find(out_columns.begin(), out_columns.end(), name) ==
        out_columns.end()) {
      out_columns.push_back(name);
    }
  }
  auto op = std::make_shared<operators::EvalOp>(std::move(assignments),
                                                nullptr,
                                                std::vector<std::string>{});
  TileableNode* node =
      session_->AddTileable(std::move(op), {node_}, std::move(out_columns));
  return DataFrameRef(session_, node);
}

Result<DataFrameRef> DataFrameRef::Filter(ExprPtr predicate) const {
  XORBITS_RETURN_NOT_OK(CheckValid(*this));
  XORBITS_RETURN_NOT_OK(CheckExprColumns(*this, *predicate));
  auto op = std::make_shared<operators::EvalOp>(
      std::vector<Assignment>{}, std::move(predicate),
      std::vector<std::string>{});
  TileableNode* node =
      session_->AddTileable(std::move(op), {node_}, node_->columns);
  return DataFrameRef(session_, node);
}

Result<DataFrameRef> DataFrameRef::Select(
    const std::vector<std::string>& cols) const {
  XORBITS_RETURN_NOT_OK(CheckValid(*this));
  XORBITS_RETURN_NOT_OK(CheckColumns(*this, cols));
  auto op = std::make_shared<operators::EvalOp>(std::vector<Assignment>{},
                                                nullptr, cols);
  TileableNode* node = session_->AddTileable(std::move(op), {node_}, cols);
  return DataFrameRef(session_, node);
}

Result<DataFrameRef> DataFrameRef::Rename(
    const std::map<std::string, std::string>& mapping) const {
  XORBITS_RETURN_NOT_OK(CheckValid(*this));
  std::vector<Assignment> assignments;
  std::vector<std::string> out_columns;
  for (const auto& c : node_->columns) {
    auto it = mapping.find(c);
    if (it != mapping.end()) {
      assignments.push_back({it->second, operators::Col(c)});
      out_columns.push_back(it->second);
    } else {
      out_columns.push_back(c);
    }
  }
  auto op = std::make_shared<operators::EvalOp>(std::move(assignments),
                                                nullptr, out_columns);
  TileableNode* node =
      session_->AddTileable(std::move(op), {node_}, out_columns);
  return DataFrameRef(session_, node);
}

Result<DataFrameRef> DataFrameRef::GroupByAgg(
    const std::vector<std::string>& keys,
    const std::vector<AggSpec>& specs) const {
  XORBITS_RETURN_NOT_OK(CheckValid(*this));
  XORBITS_RETURN_NOT_OK(CheckColumns(*this, keys));
  std::vector<std::string> out_columns = keys;
  for (const auto& s : specs) {
    if (!s.input.empty()) {
      XORBITS_RETURN_NOT_OK(CheckColumns(*this, {s.input}));
    }
    out_columns.push_back(s.output);
  }
  if (session_->config().strict_api_emulation &&
      (session_->config().engine == EngineKind::kDaskLike ||
       session_->config().engine == EngineKind::kSparkLike)) {
    for (const auto& s : specs) {
      if (s.func == dataframe::AggFunc::kMedian) {
        return Status::NotImplemented(
            "exact groupby.median unsupported (approximate only)");
      }
    }
  }
  auto op = std::make_shared<operators::GroupByAggOp>(keys, specs);
  TileableNode* node =
      session_->AddTileable(std::move(op), {node_}, std::move(out_columns));
  return DataFrameRef(session_, node);
}

Result<DataFrameRef> DataFrameRef::Merge(const DataFrameRef& right,
                                         const MergeOptions& options) const {
  XORBITS_RETURN_NOT_OK(CheckValid(*this));
  XORBITS_RETURN_NOT_OK(CheckValid(right));
  const bool same_names =
      options.left_on.empty() && options.right_on.empty();
  const auto& lkeys = same_names ? options.on : options.left_on;
  const auto& rkeys = same_names ? options.on : options.right_on;
  if (lkeys.empty() || lkeys.size() != rkeys.size()) {
    return Status::Invalid("merge: bad key specification");
  }
  XORBITS_RETURN_NOT_OK(CheckColumns(*this, lkeys));
  XORBITS_RETURN_NOT_OK(CheckColumns(right, rkeys));

  auto is_key = [](const std::vector<std::string>& keys,
                   const std::string& name) {
    return std::find(keys.begin(), keys.end(), name) != keys.end();
  };
  // Output schema mirrors dataframe::Merge exactly.
  std::vector<std::string> out_columns;
  for (const auto& name : node_->columns) {
    std::string out_name = name;
    if (!(same_names && is_key(lkeys, name)) && right.HasColumn(name) &&
        !(same_names && is_key(rkeys, name))) {
      out_name = name + options.suffix_left;
    }
    out_columns.push_back(out_name);
  }
  for (const auto& name : right.columns()) {
    if (same_names && is_key(rkeys, name)) continue;
    std::string out_name = name;
    if (HasColumn(name) && !(same_names && is_key(lkeys, name))) {
      out_name = name + options.suffix_right;
    }
    out_columns.push_back(out_name);
  }
  // Distributed merges produce partition-ordered output; sort=True needs a
  // global sort over the (left-named) join keys afterwards.
  dataframe::MergeOptions merge_opts = options;
  const bool sort_after = merge_opts.sort;
  merge_opts.sort = false;
  auto op = std::make_shared<operators::MergeOp>(merge_opts);
  TileableNode* node = session_->AddTileable(
      std::move(op), {node_, right.node()}, std::move(out_columns));
  DataFrameRef merged(session_, node);
  if (!sort_after) return merged;
  std::vector<std::string> sort_keys;
  for (const auto& k : lkeys) {
    sort_keys.push_back(merged.HasColumn(k) ? k : k + options.suffix_left);
  }
  return merged.SortValues(sort_keys);
}

Result<DataFrameRef> DataFrameRef::SortValues(
    const std::vector<std::string>& by,
    const std::vector<bool>& ascending) const {
  XORBITS_RETURN_NOT_OK(CheckValid(*this));
  XORBITS_RETURN_NOT_OK(CheckColumns(*this, by));
  auto op = std::make_shared<operators::SortValuesOp>(by, ascending);
  TileableNode* node =
      session_->AddTileable(std::move(op), {node_}, node_->columns);
  return DataFrameRef(session_, node);
}

Result<DataFrameRef> DataFrameRef::DropDuplicates(
    const std::vector<std::string>& subset) const {
  XORBITS_RETURN_NOT_OK(CheckValid(*this));
  XORBITS_RETURN_NOT_OK(CheckColumns(*this, subset));
  auto op = std::make_shared<operators::DropDuplicatesOp>(subset);
  TileableNode* node =
      session_->AddTileable(std::move(op), {node_}, node_->columns);
  return DataFrameRef(session_, node);
}

Result<DataFrameRef> DataFrameRef::Head(int64_t n) const {
  XORBITS_RETURN_NOT_OK(CheckValid(*this));
  if (n < 0) return Status::Invalid("head(n) requires n >= 0");
  auto op = std::make_shared<operators::HeadOp>(n);
  TileableNode* node =
      session_->AddTileable(std::move(op), {node_}, node_->columns);
  return DataFrameRef(session_, node);
}

Result<DataFrameRef> DataFrameRef::Iloc(int64_t pos) const {
  XORBITS_RETURN_NOT_OK(CheckValid(*this));
  auto op = std::make_shared<operators::ILocOp>(pos);
  TileableNode* node =
      session_->AddTileable(std::move(op), {node_}, node_->columns);
  return DataFrameRef(session_, node);
}

Result<DataFrameRef> DataFrameRef::Agg(
    const std::vector<AggSpec>& specs) const {
  // Whole-frame aggregation: group on a constant key, then drop it.
  XORBITS_ASSIGN_OR_RETURN(
      DataFrameRef keyed, Assign("__all__", operators::Lit(int64_t{0})));
  XORBITS_ASSIGN_OR_RETURN(DataFrameRef grouped,
                           keyed.GroupByAgg({"__all__"}, specs));
  std::vector<std::string> outs;
  for (const auto& s : specs) outs.push_back(s.output);
  return grouped.Select(outs);
}

Result<DataFrameRef> DataFrameRef::PivotTable(
    const std::vector<std::string>& index, const std::string& columns,
    const std::string& values, dataframe::AggFunc func) const {
  XORBITS_RETURN_NOT_OK(CheckValid(*this));
  XORBITS_RETURN_NOT_OK(CheckColumns(*this, index));
  XORBITS_RETURN_NOT_OK(CheckColumns(*this, {columns, values}));
  if (session_->config().strict_api_emulation &&
      (session_->config().engine == EngineKind::kDaskLike ||
       session_->config().engine == EngineKind::kSparkLike)) {
    return Status::NotImplemented(
        "pivot_table unsupported under this engine's pandas API");
  }
  std::vector<std::string> keys = index;
  keys.push_back(columns);
  XORBITS_ASSIGN_OR_RETURN(
      DataFrameRef grouped,
      GroupByAgg(keys, {{values, func, "__pivot_value__"}}));
  auto op = std::make_shared<operators::PivotReshapeOp>(index, columns,
                                                        "__pivot_value__");
  // Output schema depends on the data: leave it empty (pruning then stays
  // conservative on this branch).
  TileableNode* node =
      session_->AddTileable(std::move(op), {grouped.node()}, {});
  return DataFrameRef(session_, node);
}

Result<DataFrameRef> DataFrameRef::CumSum(const std::string& column,
                                          const std::string& output) const {
  XORBITS_RETURN_NOT_OK(CheckValid(*this));
  XORBITS_RETURN_NOT_OK(CheckColumns(*this, {column}));
  if (session_->config().strict_api_emulation &&
      (session_->config().engine == EngineKind::kDaskLike ||
       session_->config().engine == EngineKind::kSparkLike)) {
    return Status::NotImplemented("cumsum over partitions unsupported");
  }
  std::vector<std::string> out_columns = node_->columns;
  if (std::find(out_columns.begin(), out_columns.end(), output) ==
      out_columns.end()) {
    out_columns.push_back(output);
  }
  auto op = std::make_shared<operators::CumSumOp>(column, output);
  TileableNode* node =
      session_->AddTileable(std::move(op), {node_}, std::move(out_columns));
  return DataFrameRef(session_, node);
}

Result<DataFrameRef> DataFrameRef::RollingMean(const std::string& column,
                                               const std::string& output,
                                               int64_t window) const {
  XORBITS_RETURN_NOT_OK(CheckValid(*this));
  XORBITS_RETURN_NOT_OK(CheckColumns(*this, {column}));
  if (window <= 0) return Status::Invalid("rolling window must be positive");
  if (session_->config().strict_api_emulation &&
      (session_->config().engine == EngineKind::kDaskLike ||
       session_->config().engine == EngineKind::kSparkLike)) {
    return Status::NotImplemented(
        "rolling windows across partitions unsupported");
  }
  std::vector<std::string> out_columns = node_->columns;
  if (std::find(out_columns.begin(), out_columns.end(), output) ==
      out_columns.end()) {
    out_columns.push_back(output);
  }
  auto op =
      std::make_shared<operators::RollingMeanOp>(column, output, window);
  TileableNode* node =
      session_->AddTileable(std::move(op), {node_}, std::move(out_columns));
  return DataFrameRef(session_, node);
}

Status DataFrameRef::ToParquet(const std::string& path) const {
  XORBITS_ASSIGN_OR_RETURN(dataframe::DataFrame df, Fetch());
  return io::WriteXpq(path, df);
}

Status DataFrameRef::ToCsv(const std::string& path) const {
  XORBITS_ASSIGN_OR_RETURN(dataframe::DataFrame df, Fetch());
  return io::WriteCsv(path, df);
}

Result<dataframe::DataFrame> DataFrameRef::ToParquetDistributed(
    const std::string& dir) const {
  XORBITS_RETURN_NOT_OK(CheckValid(*this));
  auto op = std::make_shared<operators::WriteXpqOp>(dir);
  TileableNode* node = session_->AddTileable(
      std::move(op), {node_}, {"path", "rows"});
  return DataFrameRef(session_, node).Fetch();
}

Result<dataframe::DataFrame> DataFrameRef::Describe(
    const std::vector<std::string>& numeric_columns) const {
  XORBITS_RETURN_NOT_OK(CheckValid(*this));
  XORBITS_RETURN_NOT_OK(CheckColumns(*this, numeric_columns));
  using dataframe::AggFunc;
  std::vector<AggSpec> specs;
  for (const auto& c : numeric_columns) {
    specs.push_back({c, AggFunc::kCount, c + "/count"});
    specs.push_back({c, AggFunc::kMean, c + "/mean"});
    specs.push_back({c, AggFunc::kStd, c + "/std"});
    specs.push_back({c, AggFunc::kMin, c + "/min"});
    specs.push_back({c, AggFunc::kMax, c + "/max"});
  }
  XORBITS_ASSIGN_OR_RETURN(DataFrameRef agg, Agg(specs));
  XORBITS_ASSIGN_OR_RETURN(dataframe::DataFrame wide, agg.Fetch());
  // Reshape the single row into the pandas describe() layout: one row per
  // statistic, one column per input column.
  const char* kStats[] = {"count", "mean", "std", "min", "max"};
  dataframe::DataFrame out;
  XORBITS_RETURN_NOT_OK(out.SetColumn(
      "stat", dataframe::Column::String(
                  {"count", "mean", "std", "min", "max"})));
  for (const auto& c : numeric_columns) {
    std::vector<double> vals;
    std::vector<uint8_t> validity;
    for (const char* stat : kStats) {
      XORBITS_ASSIGN_OR_RETURN(const dataframe::Column* cell,
                               wide.GetColumn(c + "/" + stat));
      validity.push_back(cell->IsValid(0) ? 1 : 0);
      vals.push_back(cell->IsValid(0) ? cell->GetDouble(0) : 0.0);
    }
    XORBITS_RETURN_NOT_OK(out.SetColumn(
        c, dataframe::Column::Float64(std::move(vals), std::move(validity))));
  }
  return out;
}

Result<DataFrameRef> DataFrameRef::ValueCounts(
    const std::string& column) const {
  XORBITS_ASSIGN_OR_RETURN(
      DataFrameRef counts,
      GroupByAgg({column}, {{"", dataframe::AggFunc::kSize, "count"}}));
  return counts.SortValues({"count", column}, {false, true});
}

Result<DataFrameRef> DataFrameRef::NLargest(int64_t n,
                                            const std::string& column) const {
  XORBITS_ASSIGN_OR_RETURN(DataFrameRef sorted,
                           SortValues({column}, {false}));
  return sorted.Head(n);
}

Result<dataframe::DataFrame> DataFrameRef::Fetch() const {
  XORBITS_RETURN_NOT_OK(CheckValid(*this));
  return session_->FetchDataFrame(node_);
}

Result<std::string> DataFrameRef::Repr(int64_t max_rows) const {
  XORBITS_ASSIGN_OR_RETURN(dataframe::DataFrame df, Fetch());
  return df.ToString(max_rows);
}

Result<int64_t> DataFrameRef::CountRows() const {
  XORBITS_ASSIGN_OR_RETURN(dataframe::DataFrame df, Fetch());
  return df.num_rows();
}

// --- tensors ---

namespace {
Result<TensorRef> EwiseBinary(const TensorRef& a, const TensorRef& b,
                              operators::EwiseChunkOp::Kind kind) {
  if (!a.valid() || !b.valid()) return Status::Invalid("invalid tensor");
  auto op = std::make_shared<operators::TensorEwiseOp>(kind);
  TileableNode* node =
      a.session()->AddTileable(std::move(op), {a.node(), b.node()}, {});
  return TensorRef(a.session(), node);
}

Result<TensorRef> EwiseUnary(const TensorRef& a,
                             operators::EwiseChunkOp::Kind kind,
                             double scalar = 0.0) {
  if (!a.valid()) return Status::Invalid("invalid tensor");
  auto op = std::make_shared<operators::TensorEwiseOp>(kind, scalar);
  TileableNode* node = a.session()->AddTileable(std::move(op), {a.node()}, {});
  return TensorRef(a.session(), node);
}
}  // namespace

Result<TensorRef> TensorRef::Add(const TensorRef& other) const {
  return EwiseBinary(*this, other, operators::EwiseChunkOp::Kind::kAdd);
}
Result<TensorRef> TensorRef::Sub(const TensorRef& other) const {
  return EwiseBinary(*this, other, operators::EwiseChunkOp::Kind::kSub);
}
Result<TensorRef> TensorRef::Mul(const TensorRef& other) const {
  return EwiseBinary(*this, other, operators::EwiseChunkOp::Kind::kMul);
}
Result<TensorRef> TensorRef::Div(const TensorRef& other) const {
  return EwiseBinary(*this, other, operators::EwiseChunkOp::Kind::kDiv);
}
Result<TensorRef> TensorRef::AddScalar(double s) const {
  return EwiseUnary(*this, operators::EwiseChunkOp::Kind::kAddScalar, s);
}
Result<TensorRef> TensorRef::MulScalar(double s) const {
  return EwiseUnary(*this, operators::EwiseChunkOp::Kind::kMulScalar, s);
}
Result<TensorRef> TensorRef::Exp() const {
  return EwiseUnary(*this, operators::EwiseChunkOp::Kind::kExp);
}
Result<TensorRef> TensorRef::Sqrt() const {
  return EwiseUnary(*this, operators::EwiseChunkOp::Kind::kSqrt);
}

Result<TensorRef> TensorRef::MatMul(const TensorRef& other) const {
  if (!valid() || !other.valid()) return Status::Invalid("invalid tensor");
  auto op = std::make_shared<operators::MatMulOp>();
  TileableNode* node =
      session_->AddTileable(std::move(op), {node_, other.node()}, {});
  return TensorRef(session_, node);
}

Result<TensorRef> TensorRef::Sum() const {
  if (!valid()) return Status::Invalid("invalid tensor");
  auto op = std::make_shared<operators::TensorSumOp>();
  TileableNode* node = session_->AddTileable(std::move(op), {node_}, {});
  return TensorRef(session_, node);
}

Result<std::pair<TensorRef, TensorRef>> TensorRef::QR() const {
  if (!valid()) return Status::Invalid("invalid tensor");
  auto op = std::make_shared<operators::QROp>();
  TileableNode* q = session_->AddTileable(op, {node_}, {}, /*output=*/0);
  TileableNode* r = session_->AddTileable(op, {node_}, {}, /*output=*/1);
  return std::make_pair(TensorRef(session_, q), TensorRef(session_, r));
}

Result<std::tuple<TensorRef, TensorRef, TensorRef>> TensorRef::SVD() const {
  if (!valid()) return Status::Invalid("invalid tensor");
  auto op = std::make_shared<operators::SVDOp>();
  TileableNode* u = session_->AddTileable(op, {node_}, {}, /*output=*/0);
  TileableNode* s = session_->AddTileable(op, {node_}, {}, /*output=*/1);
  TileableNode* vt = session_->AddTileable(op, {node_}, {}, /*output=*/2);
  return std::make_tuple(TensorRef(session_, u), TensorRef(session_, s),
                         TensorRef(session_, vt));
}

Result<tensor::NDArray> TensorRef::Fetch() const {
  if (!valid()) return Status::Invalid("invalid tensor");
  return session_->FetchTensor(node_);
}

// --- factories ---

Result<DataFrameRef> ReadParquet(core::Session* session,
                                 const std::string& path) {
  XORBITS_ASSIGN_OR_RETURN(io::XpqFileInfo info, io::ReadXpqInfo(path));
  std::vector<std::string> columns;
  for (const auto& c : info.columns) columns.push_back(c.name);
  auto op = std::make_shared<operators::ReadXpqOp>(path);
  TileableNode* node =
      session->AddTileable(std::move(op), {}, std::move(columns));
  node->est_rows = info.num_rows;
  return DataFrameRef(session, node);
}

Result<DataFrameRef> ReadCsv(core::Session* session, const std::string& path,
                             std::vector<std::string> parse_dates) {
  // Schema from the file head (one-row read).
  io::CsvOptions opts;
  opts.parse_dates = parse_dates;
  opts.max_rows = 1;
  XORBITS_ASSIGN_OR_RETURN(dataframe::DataFrame head,
                           io::ReadCsv(path, opts));
  auto op = std::make_shared<operators::ReadCsvOp>(path,
                                                   std::move(parse_dates));
  TileableNode* node =
      session->AddTileable(std::move(op), {}, head.column_names());
  return DataFrameRef(session, node);
}

Result<DataFrameRef> FromPandas(core::Session* session,
                                dataframe::DataFrame df) {
  std::vector<std::string> columns = df.column_names();
  auto op = std::make_shared<operators::FromDataFrameOp>(std::move(df));
  TileableNode* node =
      session->AddTileable(std::move(op), {}, std::move(columns));
  return DataFrameRef(session, node);
}

Result<DataFrameRef> ConcatFrames(const std::vector<DataFrameRef>& frames) {
  if (frames.empty()) return Status::Invalid("concat of zero frames");
  std::vector<TileableNode*> inputs;
  for (const auto& f : frames) {
    XORBITS_RETURN_NOT_OK(CheckValid(f));
    inputs.push_back(f.node());
  }
  auto op = std::make_shared<operators::ConcatOp>();
  TileableNode* node = frames[0].session()->AddTileable(
      std::move(op), std::move(inputs), frames[0].columns());
  return DataFrameRef(frames[0].session(), node);
}

Result<TensorRef> RandomUniform(core::Session* session,
                                std::vector<int64_t> shape, uint64_t seed) {
  auto op = std::make_shared<operators::RandomTensorOp>(
      std::move(shape), seed, operators::RandomChunkOp::Dist::kUniform);
  TileableNode* node = session->AddTileable(std::move(op), {}, {});
  return TensorRef(session, node);
}

Result<TensorRef> RandomNormal(core::Session* session,
                               std::vector<int64_t> shape, uint64_t seed) {
  auto op = std::make_shared<operators::RandomTensorOp>(
      std::move(shape), seed, operators::RandomChunkOp::Dist::kNormal);
  TileableNode* node = session->AddTileable(std::move(op), {}, {});
  return TensorRef(session, node);
}

Result<TensorRef> FromNumpy(core::Session* session, tensor::NDArray array) {
  auto op = std::make_shared<operators::FromNDArrayOp>(std::move(array));
  TileableNode* node = session->AddTileable(std::move(op), {}, {});
  return TensorRef(session, node);
}

Result<TensorRef> Lstsq(const TensorRef& x, const TensorRef& y) {
  if (!x.valid() || !y.valid()) return Status::Invalid("invalid tensor");
  auto op = std::make_shared<operators::LstsqOp>();
  TileableNode* node =
      x.session()->AddTileable(std::move(op), {x.node(), y.node()}, {});
  return TensorRef(x.session(), node);
}

}  // namespace xorbits
