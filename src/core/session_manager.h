#ifndef XORBITS_CORE_SESSION_MANAGER_H_
#define XORBITS_CORE_SESSION_MANAGER_H_

#include <condition_variable>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/config.h"
#include "common/metrics.h"
#include "scheduler/executor.h"
#include "services/meta_service.h"
#include "services/result_cache.h"
#include "services/storage_service.h"

namespace xorbits::core {

class Session;

/// Per-session knobs passed at CreateSession time. Zero means "inherit the
/// cluster Config's session_* default".
struct SessionOptions {
  /// Weighted-fair priority in [1, 100]; 0 = config.session_priority.
  int priority = 0;
  /// Per-session concurrent-subtask cap; 0 = config.session_max_inflight
  /// (where 0 in turn means unlimited).
  int max_inflight = 0;
};

/// The multi-tenant cluster front door (DESIGN.md §8). Owns the shared
/// cluster services — storage, meta, one executor with persistent band
/// workers, and the cluster-level Metrics they bind to — and hands out
/// Sessions whose graph submissions pass through admission control:
///
///   1. queue:  a submission that cannot run now waits (bounded by
///              admission_queue_depth slots and admission_timeout_ms);
///   2. spill:  an admitted session over its memory quota has its own cold
///              chunks spilled by the storage service;
///   3. shed:   a submission that cannot even queue is rejected with
///              kOverloaded + a backoff hint, before it consumes cluster
///              memory — the retryable "try again later" path;
///   4. fail-session: a session whose quota cannot be met even by spilling
///              fails alone with kQuotaExceeded; co-tenants never pay.
///
/// Tenant isolation is by key namespace: each session's chunk keys are
/// prefixed "s<id>/", which the storage service parses for per-session byte
/// accounting and the manager uses to free a closed session's state.
class SessionManager {
 public:
  /// Validates `config` (Config::Validate) and builds the shared cluster.
  /// An invalid config is reported here, before any service exists.
  static Result<std::unique_ptr<SessionManager>> Create(Config config);

  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Opens a tenant session submitting into the shared cluster. The session
  /// keeps pointers into the manager, so it must not outlive it.
  std::unique_ptr<Session> CreateSession(SessionOptions options = {});

  const Config& config() const { return config_; }
  /// Cluster-level metrics: storage/spill/recovery counters shared by all
  /// tenants. Per-session latency lives in each Session's own Metrics.
  Metrics& metrics() { return metrics_; }
  services::StorageService& storage() { return *storage_; }
  services::MetaService& meta() { return meta_; }
  scheduler::Executor& executor() { return *executor_; }
  /// Cluster-wide cross-session result cache (DESIGN.md §9); null unless
  /// config.enable_result_cache. Cached bytes live under the "cache/" key
  /// namespace and are charged to result_cache_budget_bytes here — never to
  /// any tenant's session_memory_quota_bytes.
  services::ResultCache* result_cache() { return result_cache_.get(); }

  /// Gates one graph submission (called by Session::Materialize).
  /// `estimated_bytes` is the submission's projected memory footprint,
  /// reserved against cluster capacity until Release. Blocks while the
  /// cluster is saturated; sheds with kOverloaded (carrying a backoff hint
  /// proportional to queue depth) when the admission queue is full or the
  /// wait exceeds admission_timeout_ms. A submission into an idle cluster
  /// is always admitted, whatever its estimate — progress over perfection.
  Status Admit(int64_t session_id, int64_t estimated_bytes);
  /// Returns the submission's reservation and wakes one queued waiter.
  void Release(int64_t session_id);

  /// Session-destructor hook: frees the tenant's stored chunks and meta
  /// entries (key prefix "s<id>/") and updates the live-session gauge.
  void OnSessionClose(int64_t session_id);

 private:
  explicit SessionManager(Config config);

  Config config_;
  Metrics metrics_;
  std::unique_ptr<services::StorageService> storage_;
  services::MetaService meta_;
  std::unique_ptr<scheduler::Executor> executor_;
  /// Created when config_.enable_result_cache; outlives every session.
  std::unique_ptr<services::ResultCache> result_cache_;

  // Admission state (guarded by mu_). `admitted_bytes_` remembers each
  // running submission's reservation so Release needs no arguments beyond
  // the session id; one session runs at most one Materialize at a time.
  std::mutex mu_;
  std::condition_variable admit_cv_;
  int64_t next_session_id_ = 1;
  int running_ = 0;        // admitted, currently executing submissions
  int waiters_ = 0;        // submissions queued for admission
  int64_t reserved_bytes_ = 0;
  std::unordered_map<int64_t, int64_t> admitted_bytes_;
  int64_t open_sessions_ = 0;

  Gauge* sessions_active_;
  Gauge* sessions_shed_;
  Histogram* queue_wait_us_;
};

}  // namespace xorbits::core

#endif  // XORBITS_CORE_SESSION_MANAGER_H_
