#ifndef XORBITS_CORE_SESSION_H_
#define XORBITS_CORE_SESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/metrics.h"
#include "graph/graph.h"
#include "optimizer/pass_manager.h"
#include "services/meta_service.h"
#include "services/storage_service.h"
#include "tiling/tiling_driver.h"

namespace xorbits::core {

/// One Xorbits runtime: the simulated cluster (bands + storage), the meta
/// service, the growing tileable/chunk graphs, and the tiling driver. The
/// paper's session service keeps exactly this state per client session.
class Session {
 public:
  explicit Session(Config config);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  const Config& config() const { return config_; }
  Metrics& metrics() { return metrics_; }
  graph::TileableGraph& tileable_graph() { return tileable_graph_; }
  services::StorageService& storage() { return *storage_; }
  services::MetaService& meta() { return meta_; }

  /// Adds a tileable node for `op` (the API layer's __call__ step).
  graph::TileableNode* AddTileable(
      std::shared_ptr<graph::OperatorBase> op,
      std::vector<graph::TileableNode*> inputs,
      std::vector<std::string> columns, int output_index = 0);

  /// Deferred evaluation trigger: tiles and executes whatever `sinks` need
  /// (no-op for parts already materialized).
  Status Materialize(const std::vector<graph::TileableNode*>& sinks);

  /// Fetches a materialized dataframe tileable (chunks concatenated).
  Result<dataframe::DataFrame> FetchDataFrame(graph::TileableNode* node);
  /// Fetches a materialized tensor tileable (row-chunk stacked).
  Result<tensor::NDArray> FetchTensor(graph::TileableNode* node);

 private:
  Config config_;
  Metrics metrics_;
  std::unique_ptr<services::StorageService> storage_;
  services::MetaService meta_;
  graph::TileableGraph tileable_graph_;
  graph::ChunkGraph chunk_graph_;
  /// Optimizer pipelines (declared before driver_, which keeps a pointer).
  optimizer::PassManager pass_manager_;
  std::unique_ptr<tiling::TilingDriver> driver_;
};

}  // namespace xorbits::core

#endif  // XORBITS_CORE_SESSION_H_
