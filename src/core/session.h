#ifndef XORBITS_CORE_SESSION_H_
#define XORBITS_CORE_SESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/metrics.h"
#include "graph/graph.h"
#include "optimizer/pass_manager.h"
#include "services/meta_service.h"
#include "services/result_cache.h"
#include "services/storage_service.h"
#include "tiling/tiling_driver.h"

namespace xorbits::core {

class SessionManager;

/// One Xorbits runtime: the simulated cluster (bands + storage), the meta
/// service, the growing tileable/chunk graphs, and the tiling driver. The
/// paper's session service keeps exactly this state per client session.
///
/// Two modes:
///  - solo (the `Config` constructor): the session owns a private cluster —
///    storage, meta, executor — the historical single-tenant behaviour,
///    byte-identical to before multi-tenancy existed.
///  - tenant (constructed by SessionManager::CreateSession): the session
///    shares the manager's cluster services, namespaces its chunk keys
///    under "s<id>/", and every Materialize passes admission control and
///    runs under weighted-fair scheduling with this session's priority.
class Session {
 public:
  explicit Session(Config config);
  /// Tenant mode; called by SessionManager::CreateSession. `config` is the
  /// manager's config with per-session overrides (priority, trace pid)
  /// applied. The session must not outlive `manager`.
  Session(SessionManager* manager, Config config, int64_t session_id);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  const Config& config() const { return config_; }
  Metrics& metrics() { return metrics_; }
  graph::TileableGraph& tileable_graph() { return tileable_graph_; }
  services::StorageService& storage() { return *storage_; }
  services::MetaService& meta() { return *meta_; }
  /// Tenant id under a SessionManager; -1 for solo sessions.
  int64_t session_id() const { return session_id_; }

  /// Adds a tileable node for `op` (the API layer's __call__ step).
  graph::TileableNode* AddTileable(
      std::shared_ptr<graph::OperatorBase> op,
      std::vector<graph::TileableNode*> inputs,
      std::vector<std::string> columns, int output_index = 0);

  /// Deferred evaluation trigger: tiles and executes whatever `sinks` need
  /// (no-op for parts already materialized).
  Status Materialize(const std::vector<graph::TileableNode*>& sinks);

  /// Fetches a materialized dataframe tileable (chunks concatenated).
  Result<dataframe::DataFrame> FetchDataFrame(graph::TileableNode* node);
  /// Fetches a materialized tensor tileable (row-chunk stacked).
  Result<tensor::NDArray> FetchTensor(graph::TileableNode* node);

 private:
  /// Projected memory footprint of the un-materialized part of the graph,
  /// the reservation Admit arbitrates between concurrent submissions:
  /// est_rows * 8 bytes * columns per source when row counts are known,
  /// one chunk_store_limit per opaque node otherwise.
  int64_t EstimatePendingBytes(
      const std::vector<graph::TileableNode*>& topo) const;

  Config config_;
  Metrics metrics_;
  /// Null for solo sessions; owns the shared cluster in tenant mode.
  SessionManager* manager_ = nullptr;
  int64_t session_id_ = -1;
  /// Owned in solo mode, null in tenant mode; `storage_`/`meta_` always
  /// point at whichever cluster (private or shared) this session uses.
  std::unique_ptr<services::StorageService> owned_storage_;
  services::StorageService* storage_;
  std::unique_ptr<services::MetaService> owned_meta_;
  services::MetaService* meta_;
  /// Solo-mode result cache (config.enable_result_cache); tenant sessions
  /// use the manager's cluster-wide cache instead and leave this null.
  std::unique_ptr<services::ResultCache> owned_result_cache_;
  graph::TileableGraph tileable_graph_;
  graph::ChunkGraph chunk_graph_;
  /// Optimizer pipelines (declared before driver_, which keeps a pointer).
  optimizer::PassManager pass_manager_;
  std::unique_ptr<tiling::TilingDriver> driver_;
};

}  // namespace xorbits::core

#endif  // XORBITS_CORE_SESSION_H_
