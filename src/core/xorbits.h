#ifndef XORBITS_CORE_XORBITS_H_
#define XORBITS_CORE_XORBITS_H_

#include <map>
#include <tuple>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/session.h"
#include "dataframe/groupby.h"
#include "dataframe/join.h"
#include "operators/expr.h"

namespace xorbits {

/// Lazy handle to a distributed dataframe — the analogue of an
/// `xorbits.pandas` object. Builder methods append tileable nodes; nothing
/// executes until `Fetch`/`Repr` (deferred evaluation, §IV-C): results
/// materialize exactly when the user looks at them.
class DataFrameRef {
 public:
  DataFrameRef() = default;
  DataFrameRef(core::Session* session, graph::TileableNode* node)
      : session_(session), node_(node) {}

  bool valid() const { return node_ != nullptr; }
  core::Session* session() const { return session_; }
  graph::TileableNode* node() const { return node_; }
  /// Known output schema (column names).
  const std::vector<std::string>& columns() const { return node_->columns; }
  bool HasColumn(const std::string& name) const;

  /// df[name] = expr (adds or replaces a column).
  Result<DataFrameRef> Assign(const std::string& name,
                              operators::ExprPtr expr) const;
  /// Multiple assignments applied left to right in one operator.
  Result<DataFrameRef> WithColumns(
      const std::vector<std::pair<std::string, operators::ExprPtr>>& cols)
      const;
  /// df[predicate] — boolean row selection.
  Result<DataFrameRef> Filter(operators::ExprPtr predicate) const;
  /// df[[cols...]] — projection.
  Result<DataFrameRef> Select(const std::vector<std::string>& cols) const;
  Result<DataFrameRef> Rename(
      const std::map<std::string, std::string>& mapping) const;
  /// df.groupby(keys).agg(...) with NamedAgg-style output naming.
  Result<DataFrameRef> GroupByAgg(
      const std::vector<std::string>& keys,
      const std::vector<dataframe::AggSpec>& specs) const;
  Result<DataFrameRef> Merge(const DataFrameRef& right,
                             const dataframe::MergeOptions& options) const;
  Result<DataFrameRef> SortValues(
      const std::vector<std::string>& by,
      const std::vector<bool>& ascending = {}) const;
  Result<DataFrameRef> DropDuplicates(
      const std::vector<std::string>& subset = {}) const;
  Result<DataFrameRef> Head(int64_t n) const;
  /// df.iloc[pos] — single positional row.
  Result<DataFrameRef> Iloc(int64_t pos) const;
  /// Whole-frame aggregation (one output row).
  Result<DataFrameRef> Agg(const std::vector<dataframe::AggSpec>& specs)
      const;
  /// df.pivot_table(index, columns, values, aggfunc): distributed groupby
  /// followed by a gathered wide reshape. Output schema is data-dependent.
  Result<DataFrameRef> PivotTable(const std::vector<std::string>& index,
                                  const std::string& columns,
                                  const std::string& values,
                                  dataframe::AggFunc func) const;
  /// df[output] = df[column].cumsum() — distributed prefix scan.
  Result<DataFrameRef> CumSum(const std::string& column,
                              const std::string& output) const;
  /// df[output] = df[column].rolling(window).mean() — per-chunk windows
  /// with boundary carries.
  Result<DataFrameRef> RollingMean(const std::string& column,
                                   const std::string& output,
                                   int64_t window) const;
  /// df.to_parquet / df.to_csv (gathered write).
  Status ToParquet(const std::string& path) const;
  Status ToCsv(const std::string& path) const;
  /// Distributed write: one xparquet file per chunk under `dir`
  /// (part-00000.xpq, ...); returns the manifest (path, rows) table.
  Result<dataframe::DataFrame> ToParquetDistributed(
      const std::string& dir) const;
  /// df.describe(): count/mean/std/min/max of every numeric column,
  /// one output row per statistic.
  Result<dataframe::DataFrame> Describe(
      const std::vector<std::string>& numeric_columns) const;
  /// df[column].value_counts(): distinct values with descending counts.
  Result<DataFrameRef> ValueCounts(const std::string& column) const;
  /// df.nlargest(n, column).
  Result<DataFrameRef> NLargest(int64_t n, const std::string& column) const;

  /// Materializes and gathers the full result.
  Result<dataframe::DataFrame> Fetch() const;
  /// repr(df): triggers execution like printing does in a notebook.
  Result<std::string> Repr(int64_t max_rows = 10) const;
  /// Materialized row count.
  Result<int64_t> CountRows() const;

 private:
  core::Session* session_ = nullptr;
  graph::TileableNode* node_ = nullptr;
};

/// Lazy handle to a distributed tensor (the `xorbits.numpy` analogue).
class TensorRef {
 public:
  TensorRef() = default;
  TensorRef(core::Session* session, graph::TileableNode* node)
      : session_(session), node_(node) {}

  bool valid() const { return node_ != nullptr; }
  core::Session* session() const { return session_; }
  graph::TileableNode* node() const { return node_; }

  Result<TensorRef> Add(const TensorRef& other) const;
  Result<TensorRef> Sub(const TensorRef& other) const;
  Result<TensorRef> Mul(const TensorRef& other) const;
  Result<TensorRef> Div(const TensorRef& other) const;
  Result<TensorRef> AddScalar(double s) const;
  Result<TensorRef> MulScalar(double s) const;
  Result<TensorRef> Exp() const;
  Result<TensorRef> Sqrt() const;
  Result<TensorRef> MatMul(const TensorRef& other) const;
  /// Full reduction to a 1x1 tensor.
  Result<TensorRef> Sum() const;
  /// np.linalg.qr — returns (Q, R).
  Result<std::pair<TensorRef, TensorRef>> QR() const;
  /// np.linalg.svd — returns (U, S, V^T); auto-rechunks like QR.
  Result<std::tuple<TensorRef, TensorRef, TensorRef>> SVD() const;

  Result<tensor::NDArray> Fetch() const;

 private:
  core::Session* session_ = nullptr;
  graph::TileableNode* node_ = nullptr;
};

// --- factories (the import-line replacements) ---

/// xorbits.pandas.read_parquet
Result<DataFrameRef> ReadParquet(core::Session* session,
                                 const std::string& path);
/// xorbits.pandas.read_csv
Result<DataFrameRef> ReadCsv(core::Session* session, const std::string& path,
                             std::vector<std::string> parse_dates = {});
/// from in-memory data (pd.DataFrame(...))
Result<DataFrameRef> FromPandas(core::Session* session,
                                dataframe::DataFrame df);
/// pd.concat
Result<DataFrameRef> ConcatFrames(const std::vector<DataFrameRef>& frames);

/// np.random.rand / randn
Result<TensorRef> RandomUniform(core::Session* session,
                                std::vector<int64_t> shape,
                                uint64_t seed = 42);
Result<TensorRef> RandomNormal(core::Session* session,
                               std::vector<int64_t> shape,
                               uint64_t seed = 42);
Result<TensorRef> FromNumpy(core::Session* session, tensor::NDArray array);
/// Distributed least squares: beta = argmin ||X beta - y||.
Result<TensorRef> Lstsq(const TensorRef& x, const TensorRef& y);

}  // namespace xorbits

#endif  // XORBITS_CORE_XORBITS_H_
