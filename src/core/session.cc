#include "core/session.h"

#include <algorithm>

#include "common/trace_names.h"
#include "common/tracing.h"
#include "core/session_manager.h"
#include "dataframe/kernels.h"
#include "tensor/ndarray.h"

namespace xorbits::core {

namespace {

/// Registers the session with the trace sink (when one is configured) and
/// stores the returned process id back into the config, before the services
/// copy it. Runs first in the member-init order (config_ precedes storage_
/// and driver_).
Config RegisterTraceProcess(Config config) {
  if (config.trace.sink != nullptr && config.trace.pid == 0) {
    config.trace.pid = config.trace.sink->RegisterProcess(
        EngineKindName(config.engine), config.total_bands());
  }
  return config;
}

}  // namespace

Session::Session(Config config)
    : config_(RegisterTraceProcess(std::move(config))),
      owned_storage_(std::make_unique<services::StorageService>(config_,
                                                                &metrics_)),
      storage_(owned_storage_.get()),
      owned_meta_(std::make_unique<services::MetaService>()),
      meta_(owned_meta_.get()),
      pass_manager_(config_, &metrics_),
      driver_(std::make_unique<tiling::TilingDriver>(
          config_, &metrics_, storage_, meta_, &chunk_graph_,
          &pass_manager_)) {
  meta_->BindObservability(&metrics_);
  if (config_.enable_result_cache) {
    // Solo "cross-session" reuse is within-session across Materialize
    // calls (the session owns its cluster); the plumbing is identical.
    owned_result_cache_ = std::make_unique<services::ResultCache>(
        config_, storage_, &metrics_);
    pass_manager_.BindResultCache(owned_result_cache_.get(), meta_,
                                  /*session_id=*/-1);
    driver_->BindResultCache(owned_result_cache_.get());
  }
}

Session::Session(SessionManager* manager, Config config, int64_t session_id)
    : config_(RegisterTraceProcess(std::move(config))),
      manager_(manager),
      session_id_(session_id),
      storage_(&manager->storage()),
      meta_(&manager->meta()),
      pass_manager_(config_, &metrics_) {
  // Namespace this tenant's chunk keys so co-tenants never collide and the
  // storage service can attribute bytes to the session for its quota.
  chunk_graph_.set_key_prefix("s" + std::to_string(session_id) + "/");
  scheduler::RunOptions opts;
  opts.session_id = session_id;
  opts.priority = config_.session_priority;
  opts.max_inflight = config_.session_max_inflight;
  opts.metrics = &metrics_;
  opts.trace = config_.trace;
  driver_ = std::make_unique<tiling::TilingDriver>(
      config_, &metrics_, storage_, meta_, &chunk_graph_, &pass_manager_,
      &manager->executor(), opts);
  if (services::ResultCache* cache = manager->result_cache()) {
    pass_manager_.BindResultCache(cache, meta_, session_id);
    driver_->BindResultCache(cache);
  }
}

Session::~Session() {
  // A closed tenant's chunks and meta must not linger in the shared
  // cluster: free its key namespace (also releasing its quota bytes).
  if (manager_ != nullptr) manager_->OnSessionClose(session_id_);
  // Hand the final metrics to the trace sink so run reports (rendered after
  // every session is gone) still see this session's counters/histograms.
  if (config_.trace.sink != nullptr) {
    config_.trace.sink->SetProcessMetrics(config_.trace.pid,
                                          metrics_.Snapshot());
  }
}

graph::TileableNode* Session::AddTileable(
    std::shared_ptr<graph::OperatorBase> op,
    std::vector<graph::TileableNode*> inputs,
    std::vector<std::string> columns, int output_index) {
  graph::TileableNode* node =
      tileable_graph_.AddNode(std::move(op), std::move(inputs), output_index);
  node->columns = std::move(columns);
  if (Tracer* tr = config_.trace.sink) {
    tr->Instant(config_.trace.pid, kTrackSupervisor, trace::kEventAddTileable,
                {Arg("op", node->op->type_name()),
                 Arg("node", node->id)});
  }
  return node;
}

Status Session::Materialize(
    const std::vector<graph::TileableNode*>& sinks) {
  std::vector<graph::TileableNode*> topo = tileable_graph_.TopologicalOrder();
  Tracer* tr = config_.trace.sink;
  TraceSpan mat_span(tr, config_.trace.pid, kTrackSupervisor,
                     trace::kSpanMaterialize);
  mat_span.AddArg(Arg("tileables", static_cast<int64_t>(topo.size())));
  XORBITS_RETURN_NOT_OK(
      pass_manager_.RunTileablePipeline(&tileable_graph_, &topo, sinks));
  if (manager_ == nullptr) return driver_->TileAndRun(topo, sinks);
  // Tenant submission: reserve projected memory through admission control
  // (queue / shed under load; see DESIGN.md §8), run, release.
  TraceSpan submit_span(tr, config_.trace.pid, kTrackSupervisor,
                        trace::kSpanSessionSubmit);
  const int64_t estimate = EstimatePendingBytes(topo);
  submit_span.AddArg(Arg("estimated_bytes", estimate));
  XORBITS_RETURN_NOT_OK(manager_->Admit(session_id_, estimate));
  Status run_status = driver_->TileAndRun(topo, sinks);
  manager_->Release(session_id_);
  return run_status;
}

int64_t Session::EstimatePendingBytes(
    const std::vector<graph::TileableNode*>& topo) const {
  int64_t total = 0;
  for (const graph::TileableNode* node : topo) {
    if (node->tiled) continue;
    if (node->est_rows > 0) {
      const int64_t cols =
          std::max<int64_t>(1, static_cast<int64_t>(node->columns.size()));
      total += node->est_rows * 8 * cols;
    } else {
      // Opaque node: assume one full chunk until tiling learns better.
      total += config_.chunk_store_limit;
    }
  }
  return total;
}

Result<dataframe::DataFrame> Session::FetchDataFrame(
    graph::TileableNode* node) {
  // Materialize is incremental (tiled nodes and executed chunks are
  // skipped), so always run it: a tiled multi-output sibling may still have
  // unexecuted chunks.
  XORBITS_RETURN_NOT_OK(Materialize({node}));
  XORBITS_ASSIGN_OR_RETURN(auto chunks, driver_->FetchChunks(node));
  std::vector<const dataframe::DataFrame*> pieces;
  for (const auto& c : chunks) {
    XORBITS_ASSIGN_OR_RETURN(const dataframe::DataFrame* df,
                             services::AsDataFrame(c));
    pieces.push_back(df);
  }
  dataframe::DataFrame out;
  if (pieces.empty()) {
    return out;
  } else if (pieces.size() == 1) {
    out = *pieces[0];
  } else {
    XORBITS_ASSIGN_OR_RETURN(out, dataframe::Concat(pieces));
  }
  // Result fetch is a genuine forcing point (DESIGN.md §10): the frame
  // crosses back into user code, so every pending selection and lazy slot
  // resolves here, metered as `selections_forced`. No-op on dense frames.
  out.Compact();
  // Fetched frames cross back into user code, which expects plain strings:
  // late-decode dictionary columns here, once, at the session boundary.
  // (Deliberately DictDecode, not DecodedFallback — leaving the engine is
  // the planned exit, not a kernel missing a fast path.)
  for (int i = 0; i < out.num_columns(); ++i) {
    if (out.column(i).is_dict()) {
      XORBITS_RETURN_NOT_OK(
          out.SetColumn(out.column_name(i), out.column(i).DictDecode()));
    }
  }
  return out;
}

Result<tensor::NDArray> Session::FetchTensor(graph::TileableNode* node) {
  XORBITS_RETURN_NOT_OK(Materialize({node}));
  XORBITS_ASSIGN_OR_RETURN(auto chunks, driver_->FetchChunks(node));
  std::vector<const tensor::NDArray*> pieces;
  for (const auto& c : chunks) {
    XORBITS_ASSIGN_OR_RETURN(const tensor::NDArray* a,
                             services::AsNDArray(c));
    pieces.push_back(a);
  }
  if (pieces.empty()) return tensor::NDArray();
  if (pieces.size() == 1) return *pieces[0];
  return tensor::VStack(pieces);
}

}  // namespace xorbits::core
