#include "core/session.h"

#include "common/trace_names.h"
#include "common/tracing.h"
#include "dataframe/kernels.h"
#include "tensor/ndarray.h"

namespace xorbits::core {

namespace {

/// Registers the session with the trace sink (when one is configured) and
/// stores the returned process id back into the config, before the services
/// copy it. Runs first in the member-init order (config_ precedes storage_
/// and driver_).
Config RegisterTraceProcess(Config config) {
  if (config.trace.sink != nullptr && config.trace.pid == 0) {
    config.trace.pid = config.trace.sink->RegisterProcess(
        EngineKindName(config.engine), config.total_bands());
  }
  return config;
}

}  // namespace

Session::Session(Config config)
    : config_(RegisterTraceProcess(std::move(config))),
      storage_(std::make_unique<services::StorageService>(config_,
                                                          &metrics_)),
      pass_manager_(config_, &metrics_),
      driver_(std::make_unique<tiling::TilingDriver>(
          config_, &metrics_, storage_.get(), &meta_, &chunk_graph_,
          &pass_manager_)) {
  meta_.BindObservability(&metrics_);
}

Session::~Session() {
  // Hand the final metrics to the trace sink so run reports (rendered after
  // every session is gone) still see this session's counters/histograms.
  if (config_.trace.sink != nullptr) {
    config_.trace.sink->SetProcessMetrics(config_.trace.pid,
                                          metrics_.Snapshot());
  }
}

graph::TileableNode* Session::AddTileable(
    std::shared_ptr<graph::OperatorBase> op,
    std::vector<graph::TileableNode*> inputs,
    std::vector<std::string> columns, int output_index) {
  graph::TileableNode* node =
      tileable_graph_.AddNode(std::move(op), std::move(inputs), output_index);
  node->columns = std::move(columns);
  if (Tracer* tr = config_.trace.sink) {
    tr->Instant(config_.trace.pid, kTrackSupervisor, trace::kEventAddTileable,
                {Arg("op", node->op->type_name()),
                 Arg("node", node->id)});
  }
  return node;
}

Status Session::Materialize(
    const std::vector<graph::TileableNode*>& sinks) {
  std::vector<graph::TileableNode*> topo = tileable_graph_.TopologicalOrder();
  Tracer* tr = config_.trace.sink;
  TraceSpan mat_span(tr, config_.trace.pid, kTrackSupervisor,
                     trace::kSpanMaterialize);
  mat_span.AddArg(Arg("tileables", static_cast<int64_t>(topo.size())));
  XORBITS_RETURN_NOT_OK(
      pass_manager_.RunTileablePipeline(&tileable_graph_, &topo, sinks));
  return driver_->TileAndRun(topo, sinks);
}

Result<dataframe::DataFrame> Session::FetchDataFrame(
    graph::TileableNode* node) {
  // Materialize is incremental (tiled nodes and executed chunks are
  // skipped), so always run it: a tiled multi-output sibling may still have
  // unexecuted chunks.
  XORBITS_RETURN_NOT_OK(Materialize({node}));
  XORBITS_ASSIGN_OR_RETURN(auto chunks, driver_->FetchChunks(node));
  std::vector<const dataframe::DataFrame*> pieces;
  for (const auto& c : chunks) {
    XORBITS_ASSIGN_OR_RETURN(const dataframe::DataFrame* df,
                             services::AsDataFrame(c));
    pieces.push_back(df);
  }
  dataframe::DataFrame out;
  if (pieces.empty()) {
    return out;
  } else if (pieces.size() == 1) {
    out = *pieces[0];
  } else {
    XORBITS_ASSIGN_OR_RETURN(out, dataframe::Concat(pieces));
  }
  // Fetched frames cross back into user code, which expects plain strings:
  // late-decode dictionary columns here, once, at the session boundary.
  // (Deliberately DictDecode, not DecodedFallback — leaving the engine is
  // the planned exit, not a kernel missing a fast path.)
  for (int i = 0; i < out.num_columns(); ++i) {
    if (out.column(i).is_dict()) {
      XORBITS_RETURN_NOT_OK(
          out.SetColumn(out.column_name(i), out.column(i).DictDecode()));
    }
  }
  return out;
}

Result<tensor::NDArray> Session::FetchTensor(graph::TileableNode* node) {
  XORBITS_RETURN_NOT_OK(Materialize({node}));
  XORBITS_ASSIGN_OR_RETURN(auto chunks, driver_->FetchChunks(node));
  std::vector<const tensor::NDArray*> pieces;
  for (const auto& c : chunks) {
    XORBITS_ASSIGN_OR_RETURN(const tensor::NDArray* a,
                             services::AsNDArray(c));
    pieces.push_back(a);
  }
  if (pieces.empty()) return tensor::NDArray();
  if (pieces.size() == 1) return *pieces[0];
  return tensor::VStack(pieces);
}

}  // namespace xorbits::core
