// Chaos bench: cost of fault tolerance under injected failures.
//
// Runs the Census pipeline fault-free, then under three chaos modes
// (transient subtask faults at p=0.05 across three seeds, a mid-run band
// kill, a scheduled chunk loss) and reports per-run wall/modeled time plus
// the recovery counters. Writes BENCH_chaos.json.
//
// Acceptance tracked here: every chaos run must finish OK with the
// fault-free result checksum, the band-kill run must recover chunks from
// lineage, and chaos slowdown must stay under 2.5x fault-free.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "workloads/pipelines.h"

namespace xorbits::bench {
namespace {

constexpr int64_t kRows = 200000;

Config ChaosConfig() {
  Config c = BenchConfig(EngineKind::kXorbits, /*workers=*/2,
                         /*bands_per_worker=*/2, /*band_mb=*/256,
                         /*chunk_kb=*/256, /*deadline_ms=*/120000);
  c.spill_dir = "/tmp/xorbits_bench_spill_chaos";
  return c;
}

/// Exact checksum of the result frame (FNV-1a over names, dtypes, validity
/// and raw value bytes) — chaos runs must reproduce the fault-free value.
uint64_t Checksum(const dataframe::DataFrame& df) {
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](const std::string& bytes) {
    for (unsigned char b : bytes) {
      h ^= b;
      h *= 1099511628211ULL;
    }
  };
  for (int ci = 0; ci < df.num_columns(); ++ci) {
    mix(df.column_name(ci));
    const dataframe::Column& c = df.column(ci);
    std::string buf;
    buf += static_cast<char>(c.dtype());
    for (int64_t i = 0; i < c.length(); ++i) {
      buf += c.IsValid(i) ? 'v' : 'n';
      if (c.IsValid(i)) c.AppendKeyBytes(i, &buf);
    }
    mix(buf);
  }
  return h;
}

struct ChaosRun {
  std::string name;
  RunStats stats;
  uint64_t checksum = 0;
  int64_t retried = 0;
  int64_t recovered = 0;
  int64_t blacklisted = 0;
  int64_t injected = 0;
  double recovery_ms = 0;
};

ChaosRun RunScenario(const std::string& name, const Config& config) {
  ChaosRun run;
  run.name = name;
  core::Session session(config);
  auto t0 = std::chrono::steady_clock::now();
  auto result = workloads::pipelines::Census(&session, kRows, 44);
  auto t1 = std::chrono::steady_clock::now();
  run.stats.status = result.status();
  run.stats.wall_s = std::chrono::duration<double>(t1 - t0).count();
  const Metrics& m = session.metrics();
  run.stats.sim_s = static_cast<double>(m.simulated_us.load()) / 1e6;
  run.stats.subtasks = m.subtasks_executed.load();
  run.retried = m.subtasks_retried.load();
  run.recovered = m.chunks_recovered.load();
  run.blacklisted = m.bands_blacklisted.load();
  run.injected = m.faults_injected.load();
  run.recovery_ms = static_cast<double>(m.recovery_us.load()) / 1e3;
  if (result.ok()) run.checksum = Checksum(*result);
  std::printf(
      "%-22s %-5s wall %6.2fs sim %7.3fs subtasks %4lld retried %3lld "
      "recovered %3lld bands_lost %lld checksum %016llx\n",
      name.c_str(), Classify(run.stats.status), run.stats.wall_s,
      run.stats.sim_s, static_cast<long long>(run.stats.subtasks),
      static_cast<long long>(run.retried),
      static_cast<long long>(run.recovered),
      static_cast<long long>(run.blacklisted),
      static_cast<unsigned long long>(run.checksum));
  return run;
}

void WriteJson(const char* path, const std::vector<ChaosRun>& runs,
               const ChaosRun& baseline) {
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"chaos_fault_injection\",\n");
  std::fprintf(f, "  \"workload\": \"census\", \"rows\": %lld,\n",
               static_cast<long long>(kRows));
  std::fprintf(f, "  \"baseline_checksum\": \"%016llx\",\n",
               static_cast<unsigned long long>(baseline.checksum));
  std::fprintf(f, "  \"runs\": [\n");
  bool first = true;
  for (const ChaosRun& r : runs) {
    if (!first) std::fprintf(f, ",\n");
    first = false;
    const double wall_x =
        baseline.stats.wall_s > 0 ? r.stats.wall_s / baseline.stats.wall_s
                                  : 0.0;
    const double sim_x =
        baseline.stats.sim_s > 0 ? r.stats.sim_s / baseline.stats.sim_s
                                 : 0.0;
    std::fprintf(
        f,
        "    {\"scenario\": \"%s\", \"status\": \"%s\", "
        "\"wall_s\": %.4f, \"sim_s\": %.4f, \"wall_slowdown\": %.3f, "
        "\"sim_slowdown\": %.3f, \"subtasks\": %lld, "
        "\"subtasks_retried\": %lld, \"faults_injected\": %lld, "
        "\"chunks_recovered\": %lld, \"bands_blacklisted\": %lld, "
        "\"recovery_ms\": %.3f, \"checksum\": \"%016llx\", "
        "\"checksum_matches_baseline\": %s}",
        r.name.c_str(), Classify(r.stats.status), r.stats.wall_s,
        r.stats.sim_s, wall_x, sim_x,
        static_cast<long long>(r.stats.subtasks),
        static_cast<long long>(r.retried),
        static_cast<long long>(r.injected),
        static_cast<long long>(r.recovered),
        static_cast<long long>(r.blacklisted), r.recovery_ms,
        static_cast<unsigned long long>(r.checksum),
        r.checksum == baseline.checksum ? "true" : "false");
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

}  // namespace
}  // namespace xorbits::bench

int main(int argc, char** argv) {
  using namespace xorbits;
  using namespace xorbits::bench;

  InitTrace(argc, argv);
  PrintHeader("Chaos: fault injection and recovery overhead");
  std::vector<ChaosRun> runs;

  const ChaosRun baseline = RunScenario("fault_free", ChaosConfig());
  runs.push_back(baseline);

  for (uint64_t seed : {11ULL, 22ULL, 33ULL}) {
    Config c = ChaosConfig();
    c.fault_seed = seed;
    c.fault_transient_prob = 0.05;
    runs.push_back(
        RunScenario("transient_p05_s" + std::to_string(seed), c));
  }
  {
    Config c = ChaosConfig();
    c.fault_seed = 7;
    c.fault_band_kills = {{10, 1}};
    runs.push_back(RunScenario("band_kill_step10", c));
  }
  {
    Config c = ChaosConfig();
    c.fault_seed = 7;
    c.fault_chunk_losses = {8, 20};
    runs.push_back(RunScenario("chunk_loss_x2", c));
  }
  {
    Config c = ChaosConfig();
    c.fault_seed = 13;
    c.fault_transient_prob = 0.05;
    c.fault_band_kills = {{12, 2}};
    c.fault_chunk_losses = {20};
    runs.push_back(RunScenario("combined", c));
  }

  WriteJson("BENCH_chaos.json", runs, baseline);

  // Self-check against the acceptance bars.
  bool ok = baseline.stats.status.ok();
  for (const ChaosRun& r : runs) {
    if (!r.stats.status.ok() || r.checksum != baseline.checksum) {
      std::printf("FAIL: %s did not reproduce the baseline result\n",
                  r.name.c_str());
      ok = false;
    }
    if (baseline.stats.wall_s > 0 &&
        r.stats.wall_s > 2.5 * baseline.stats.wall_s) {
      std::printf("FAIL: %s slowdown %.2fx exceeds 2.5x\n", r.name.c_str(),
                  r.stats.wall_s / baseline.stats.wall_s);
      ok = false;
    }
  }
  std::printf("chaos acceptance: %s\n", ok ? "PASS" : "FAIL");
  FinishTrace();
  return ok ? 0 : 1;
}
