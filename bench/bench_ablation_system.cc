// Ablations of the systems-level design choices beyond Fig. 9: the
// locality-aware scheduling of §V-B (vs. pure breadth-first placement) and
// the storage service's disk spilling of §V-C (vs. failing on memory
// pressure). Both use the TPC-H mix as the driver workload.

#include <cstdio>
#include <filesystem>
#include <string>

#include "bench_util.h"
#include "io/tpch_gen.h"
#include "workloads/pipelines.h"
#include "workloads/tpch_queries.h"

namespace xorbits::bench {
namespace {

RunStats RunQ(int q, const std::string& dir, bool locality, bool spill,
              int64_t band_mb) {
  Config c = BenchConfig(EngineKind::kXorbits, 2, 2, band_mb,
                         /*chunk_kb=*/512, /*deadline_ms=*/180000);
  c.locality_aware = locality;
  c.enable_spill = spill;
  return TimedRun(std::move(c), [&](core::Session* s) {
    return workloads::tpch::RunQuery(q, s, dir).status();
  });
}

void Run() {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "xorbits_abl_sys").string();
  if (Status gen = io::tpch::GenerateFiles(0.05, dir); !gen.ok()) {
    std::printf("generator failed: %s\n", gen.ToString().c_str());
    return;
  }

  PrintHeader("Ablation: locality-aware scheduling (modeled seconds)");
  std::printf("%-6s %-12s %-14s %-10s %-14s %-14s\n", "query", "locality",
              "breadth-only", "speedup", "xfer_MB_loc", "xfer_MB_bfs");
  for (int q : {1, 3, 5, 9}) {
    RunStats loc = RunQ(q, dir, /*locality=*/true, /*spill=*/true, 64);
    RunStats bfs = RunQ(q, dir, /*locality=*/false, /*spill=*/true, 64);
    std::printf("Q%-5d %-12.3f %-14.3f %-9.2fx %-14.1f %-14.1f\n", q,
                loc.sim_s, bfs.sim_s,
                loc.sim_s > 0 ? bfs.sim_s / loc.sim_s : 0.0,
                loc.transfer_bytes / 1048576.0,
                bfs.transfer_bytes / 1048576.0);
  }

  PrintHeader("Ablation: storage spilling under memory pressure");
  std::printf("%-6s %-10s %-12s %-12s %-12s\n", "query", "band_MB",
              "spill_on", "spill_off", "spilled_MB");
  for (int q : {1, 9, 18}) {
    RunStats on = RunQ(q, dir, true, /*spill=*/true, /*band_mb=*/6);
    RunStats off = RunQ(q, dir, true, /*spill=*/false, /*band_mb=*/6);
    std::printf("Q%-5d %-10d %-12s %-12s %-12.1f\n", q, 6,
                on.status.ok() ? "ok" : Classify(on.status),
                off.status.ok() ? "ok" : Classify(off.status),
                on.spill_bytes / 1048576.0);
  }
  std::printf("(spill keeps tight-memory runs alive where the no-spill "
              "configuration OOMs — the Modin-vs-Xorbits contrast of "
              "Table II)\n");

  PrintHeader("Ablation: auto reduce selection (tree vs shuffle, groupby)");
  std::printf("%-14s %-12s %-12s %-12s\n", "policy", "sim_s", "status",
              "transfer_MB");
  for (ReducePolicy policy :
       {ReducePolicy::kAuto, ReducePolicy::kTree, ReducePolicy::kShuffle}) {
    Config c = BenchConfig(EngineKind::kXorbits, 2, 2, 64, 512, 180000);
    c.reduce_policy = policy;
    RunStats stats = TimedRun(std::move(c), [&](core::Session* s) {
      return workloads::tpch::RunQuery(1, s, dir).status();
    });
    const char* name = policy == ReducePolicy::kAuto ? "auto"
                       : policy == ReducePolicy::kTree ? "tree"
                                                       : "shuffle";
    std::printf("%-14s %-12.3f %-12s %-12.1f\n", name, stats.sim_s,
                stats.status.ok() ? "ok" : Classify(stats.status),
                stats.transfer_bytes / 1048576.0);
  }
  std::printf("(auto should match tree on Q1's small aggregation — the "
              "selection mechanism of Fig. 6(a))\n");

  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace xorbits::bench

int main(int argc, char** argv) {
  xorbits::bench::InitTrace(argc, argv);
  xorbits::bench::Run();
  xorbits::bench::FinishTrace();
  return 0;
}
