// Reproduces Fig. 9: ablation of dynamic tiling and graph fusion.
// (a) merge-heavy TPC-H queries Q2 (4 merges) and Q7 (many merges) with
//     dynamic tiling on vs off (everything else identical to the full
//     Xorbits configuration);
// (b) Q7 and Q8 with coloring-based graph-level fusion on vs off, and Q1
//     (expression-heavy) with operator-level fusion on vs off.

#include <cstdio>
#include <filesystem>
#include <string>

#include "bench_util.h"
#include "io/tpch_gen.h"
#include "workloads/pipelines.h"
#include "workloads/tpch_queries.h"

namespace xorbits::bench {
namespace {

RunStats RunQuery(int q, const std::string& dir, bool dynamic,
                  bool graph_fusion, bool op_fusion) {
  Config c = BenchConfig(EngineKind::kXorbits, 2, 2, /*band_mb=*/24,
                         /*chunk_kb=*/512, /*deadline_ms=*/180000);
  c.dynamic_tiling = dynamic;
  c.graph_fusion = graph_fusion;
  c.op_fusion = op_fusion;
  return TimedRun(std::move(c), [&](core::Session* s) {
    return workloads::tpch::RunQuery(q, s, dir).status();
  });
}

void Run() {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "xorbits_fig9").string();
  Status gen = io::tpch::GenerateFiles(0.05, dir);
  if (!gen.ok()) {
    std::printf("generator failed: %s\n", gen.ToString().c_str());
    return;
  }

  PrintHeader("Fig. 9(a): dynamic tiling ablation (modeled seconds)");
  std::printf("%-6s %-12s %-12s %-10s\n", "query", "dynamic_on",
              "dynamic_off", "speedup");
  for (int q : {2, 7}) {
    RunStats on = RunQuery(q, dir, true, true, true);
    RunStats off = RunQuery(q, dir, false, true, true);
    std::printf("Q%-5d %-12.3f %-12.3f %-9.2fx  %s%s\n", q, on.sim_s,
                off.sim_s, on.sim_s > 0 ? off.sim_s / on.sim_s : 0.0,
                on.status.ok() ? "" : "on:FAILED ",
                off.status.ok() ? "" : "off:FAILED");
  }
  std::printf("(paper: 7.08x on Q2, 10.59x on Q7)\n");

  // The headline dynamic-tiling scenario: a skewed imbalanced merge (the
  // TPCx-AI UC10 shape). Without runtime metadata the engine hash-shuffles
  // the hot key into one reducer; with it, the small side is broadcast.
  {
    auto uc10 = [](bool dynamic) {
      Config c = BenchConfig(EngineKind::kXorbits, 2, 2, /*band_mb=*/96,
                             /*chunk_kb=*/1024, /*deadline_ms=*/180000);
      c.dynamic_tiling = dynamic;
      return TimedRun(std::move(c), [](core::Session* s) {
        return workloads::pipelines::TpcxAiUC10(s, 300000, 1000).status();
      });
    };
    RunStats on = uc10(true);
    RunStats off = uc10(false);
    std::printf("%-6s %-12.3f %-12.3f %-9.2fx  (skewed merge, UC10 shape)\n",
                "uc10", on.sim_s, off.sim_s,
                on.sim_s > 0 ? off.sim_s / on.sim_s : 0.0);
  }

  PrintHeader("Fig. 9(b): graph-level fusion ablation (modeled seconds)");
  std::printf("%-6s %-12s %-12s %-10s\n", "query", "fusion_on",
              "fusion_off", "speedup");
  for (int q : {7, 8}) {
    RunStats on = RunQuery(q, dir, true, true, true);
    RunStats off = RunQuery(q, dir, true, false, true);
    std::printf("Q%-5d %-12.3f %-12.3f %-9.2fx  %s%s\n", q, on.sim_s,
                off.sim_s, on.sim_s > 0 ? off.sim_s / on.sim_s : 0.0,
                on.status.ok() ? "" : "on:FAILED ",
                off.status.ok() ? "" : "off:FAILED");
  }
  std::printf("(paper: 3.80x on Q7, 2.04x on Q8)\n");

  PrintHeader("Fig. 9(b) cont.: operator-level fusion ablation");
  std::printf("%-6s %-12s %-12s %-10s\n", "query", "opfuse_on",
              "opfuse_off", "improvement");
  for (int q : {1, 6}) {
    RunStats on = RunQuery(q, dir, true, true, true);
    RunStats off = RunQuery(q, dir, true, true, false);
    const double imp =
        off.sim_s > 0 ? 100.0 * (off.sim_s - on.sim_s) / off.sim_s : 0.0;
    std::printf("Q%-5d %-12.3f %-12.3f %-9.1f%%\n", q, on.sim_s, off.sim_s,
                imp);
  }
  std::printf("(paper: operator-level fusion provides a 16%% improvement)\n");

  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace xorbits::bench

int main(int argc, char** argv) {
  xorbits::bench::InitTrace(argc, argv);
  xorbits::bench::Run();
  xorbits::bench::FinishTrace();
  return 0;
}
