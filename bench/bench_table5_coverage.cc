// Reproduces Table V: API coverage rate over 30 cases sampled from the
// pandas asv benchmarks (groupby / merge / pivot focus). Native cases run
// against this engine with strict API emulation; APIs outside this
// reproduction's scope are encoded from documentation (see EXPERIMENTS.md).

#include <cstdio>

#include "bench_util.h"
#include "workloads/api_coverage.h"

int main(int argc, char** argv) {
  using namespace xorbits;
  using workloads::coverage::RunCoverage;

  bench::InitTrace(argc, argv);
  bench::PrintHeader("Table V: API coverage rate (higher is better)");
  std::printf("%-10s %-8s %-8s %-10s %s\n", "engine", "passed", "total",
              "coverage", "native-executed");
  const EngineKind kEngines[] = {EngineKind::kXorbits, EngineKind::kModinLike,
                                 EngineKind::kDaskLike,
                                 EngineKind::kSparkLike};
  for (EngineKind kind : kEngines) {
    auto report = RunCoverage(kind);
    std::printf("%-10s %-8d %-8d %-9.1f%% %d/30\n", EngineKindName(kind),
                report.passed, report.total, report.rate(),
                report.native_executed);
  }
  std::printf("(paper: xorbits 96.7%%, modin 96.7%%, dask 46.7%%, "
              "pyspark 36.7%%)\n");

  bench::PrintHeader("Failed cases per engine");
  for (EngineKind kind : kEngines) {
    auto report = RunCoverage(kind);
    std::printf("%s:\n", EngineKindName(kind));
    for (const auto& f : report.failures) std::printf("  - %s\n", f.c_str());
  }
  bench::FinishTrace();
  return 0;
}
