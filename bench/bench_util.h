#ifndef XORBITS_BENCH_BENCH_UTIL_H_
#define XORBITS_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "core/session.h"

namespace xorbits::bench {

/// Engines compared throughout the evaluation (paper Table IV).
inline std::vector<EngineKind> AllEngines() {
  return {EngineKind::kPandasLike, EngineKind::kSparkLike,
          EngineKind::kDaskLike, EngineKind::kModinLike,
          EngineKind::kXorbits};
}

/// Simulated-cluster config for benches. Band budgets and chunk limits are
/// scaled to laptop-size data; the data-to-memory *ratio* tracks the
/// paper's testbed regime (see DESIGN.md §1).
inline Config BenchConfig(EngineKind kind, int workers, int bands_per_worker,
                          int64_t band_mb, int64_t chunk_kb,
                          int64_t deadline_ms) {
  Config c = Config::Preset(kind);
  if (kind != EngineKind::kPandasLike) {
    c.num_workers = workers;
    c.bands_per_worker = bands_per_worker;
  }
  c.band_memory_limit = band_mb << 20;
  c.chunk_store_limit = chunk_kb << 10;
  c.task_deadline_ms = deadline_ms;
  c.spill_dir = "/tmp/xorbits_bench_spill_" +
                std::string(EngineKindName(kind));
  return c;
}

struct RunStats {
  Status status = Status::OK();
  double wall_s = 0;
  double sim_s = 0;  // modeled cluster time (makespan; see Metrics)
  int64_t transfer_bytes = 0;
  int64_t spill_bytes = 0;
  int64_t oom_events = 0;
  int64_t subtasks = 0;
  int64_t yields = 0;
};

/// Runs `body` inside a fresh session and snapshots timing + metrics.
inline RunStats TimedRun(Config config,
                         const std::function<Status(core::Session*)>& body) {
  core::Session session(std::move(config));
  RunStats stats;
  auto t0 = std::chrono::steady_clock::now();
  stats.status = body(&session);
  auto t1 = std::chrono::steady_clock::now();
  stats.wall_s = std::chrono::duration<double>(t1 - t0).count();
  Metrics& m = session.metrics();
  stats.sim_s = static_cast<double>(m.simulated_us.load()) / 1e6;
  stats.transfer_bytes = m.bytes_transferred.load();
  stats.spill_bytes = m.bytes_spilled.load();
  stats.oom_events = m.oom_events.load();
  stats.subtasks = m.subtasks_executed.load();
  stats.yields = m.dynamic_yields.load();
  return stats;
}

/// Failure classification used by Tables I/II.
inline const char* Classify(const Status& s) {
  if (s.ok()) return "ok";
  switch (s.code()) {
    case StatusCode::kNotImplemented: return "api";
    case StatusCode::kTimeout: return "hang";
    case StatusCode::kOutOfMemory: return "oom";
    default: return "error";
  }
}

inline void PrintHeader(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

/// Prints the engine-configuration overview (the Table IV analogue: which
/// policy stack each emulated engine runs).
inline void PrintEngineTable() {
  PrintHeader("Engine configurations (Table IV analogue)");
  std::printf("%-10s %-8s %-12s %-10s %-8s %-6s\n", "engine", "dynamic",
              "reduce", "graphfuse", "opfuse", "spill");
  for (EngineKind kind : AllEngines()) {
    Config c = Config::Preset(kind);
    const char* reduce = c.reduce_policy == ReducePolicy::kAuto ? "auto"
                         : c.reduce_policy == ReducePolicy::kTree ? "tree"
                                                                  : "shuffle";
    std::printf("%-10s %-8s %-12s %-10s %-8s %-6s\n", EngineKindName(kind),
                c.dynamic_tiling ? "yes" : "no", reduce,
                c.graph_fusion ? "yes" : "no", c.op_fusion ? "yes" : "no",
                c.enable_spill ? "yes" : "no");
  }
}

}  // namespace xorbits::bench

#endif  // XORBITS_BENCH_BENCH_UTIL_H_
