#ifndef XORBITS_BENCH_BENCH_UTIL_H_
#define XORBITS_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/tracing.h"
#include "core/session.h"

namespace xorbits::bench {

/// Shared `--trace-out=<file>` support. One Tracer is shared by every traced
/// session in the process; each registers its own track group. To keep
/// Perfetto usable, only the first kMaxTracedRuns sessions are traced in
/// benches that run dozens of configurations.
struct BenchTrace {
  std::unique_ptr<Tracer> tracer;
  std::string out_path;
  int traced_runs = 0;
  static constexpr int kMaxTracedRuns = 8;

  static BenchTrace& Get() {
    static BenchTrace instance;
    return instance;
  }
};

/// Parses --trace-out=<file> (every bench accepts it); call once at the top
/// of main. Tracing stays off (null sink everywhere) without the flag.
inline void InitTrace(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--trace-out=", 12) == 0) {
      BenchTrace& bt = BenchTrace::Get();
      bt.out_path = arg + 12;
      bt.tracer = std::make_unique<Tracer>();
    }
  }
}

/// Writes the Chrome/Perfetto JSON plus a `<file>.report.txt` run report and
/// prints the reports; call once at the end of main. No-op when tracing is
/// off.
inline void FinishTrace() {
  BenchTrace& bt = BenchTrace::Get();
  if (!bt.tracer) return;
  Status st = bt.tracer->WriteChromeTrace(bt.out_path);
  if (!st.ok()) {
    std::fprintf(stderr, "trace export failed: %s\n", st.message().c_str());
  } else {
    std::printf("\ntrace written to %s (%lld events)\n", bt.out_path.c_str(),
                static_cast<long long>(bt.tracer->event_count()));
  }
  const std::string report = bt.tracer->RenderAllReports();
  const std::string report_path = bt.out_path + ".report.txt";
  FILE* f = std::fopen(report_path.c_str(), "w");
  if (f != nullptr) {
    std::fwrite(report.data(), 1, report.size(), f);
    std::fclose(f);
    std::printf("run report written to %s\n", report_path.c_str());
  }
  std::printf("%s", report.c_str());
}

/// Engines compared throughout the evaluation (paper Table IV).
inline std::vector<EngineKind> AllEngines() {
  return {EngineKind::kPandasLike, EngineKind::kSparkLike,
          EngineKind::kDaskLike, EngineKind::kModinLike,
          EngineKind::kXorbits};
}

/// Simulated-cluster config for benches. Band budgets and chunk limits are
/// scaled to laptop-size data; the data-to-memory *ratio* tracks the
/// paper's testbed regime (see DESIGN.md §1).
inline Config BenchConfig(EngineKind kind, int workers, int bands_per_worker,
                          int64_t band_mb, int64_t chunk_kb,
                          int64_t deadline_ms) {
  Config c = Config::Preset(kind);
  if (kind != EngineKind::kPandasLike) {
    c.num_workers = workers;
    c.bands_per_worker = bands_per_worker;
  }
  c.band_memory_limit = band_mb << 20;
  c.chunk_store_limit = chunk_kb << 10;
  c.task_deadline_ms = deadline_ms;
  c.spill_dir = "/tmp/xorbits_bench_spill_" +
                std::string(EngineKindName(kind));
  return c;
}

struct RunStats {
  Status status = Status::OK();
  double wall_s = 0;
  double sim_s = 0;  // modeled cluster time (makespan; see Metrics)
  int64_t transfer_bytes = 0;
  int64_t spill_bytes = 0;
  int64_t oom_events = 0;
  int64_t subtasks = 0;
  int64_t yields = 0;
};

/// Points `config.trace` at the shared bench tracer when tracing is on.
/// Only full-Xorbits runs are traced (the baselines' sessions would multiply
/// the track count without adding information), and only up to the traced-run
/// cap.
inline void MaybeAttachTrace(Config* config) {
  BenchTrace& bt = BenchTrace::Get();
  if (!bt.tracer || config->engine != EngineKind::kXorbits ||
      bt.traced_runs >= BenchTrace::kMaxTracedRuns) {
    return;
  }
  bt.traced_runs++;
  config->trace.sink = bt.tracer.get();
}

/// Runs `body` inside a fresh session and snapshots timing + metrics.
inline RunStats TimedRun(Config config,
                         const std::function<Status(core::Session*)>& body) {
  MaybeAttachTrace(&config);
  core::Session session(std::move(config));
  RunStats stats;
  auto t0 = std::chrono::steady_clock::now();
  stats.status = body(&session);
  auto t1 = std::chrono::steady_clock::now();
  stats.wall_s = std::chrono::duration<double>(t1 - t0).count();
  // One consistent snapshot instead of per-field reads: band workers (and
  // their kernel pools) may still be running when a body bails out early.
  const MetricsSnapshot m = session.metrics().Snapshot();
  stats.sim_s = static_cast<double>(m.Counter("simulated_us")) / 1e6;
  stats.transfer_bytes = m.Counter("bytes_transferred");
  stats.spill_bytes = m.Counter("bytes_spilled");
  stats.oom_events = m.Counter("oom_events");
  stats.subtasks = m.Counter("subtasks_executed");
  stats.yields = m.Counter("dynamic_yields");
  return stats;
}

/// Failure classification used by Tables I/II.
inline const char* Classify(const Status& s) {
  if (s.ok()) return "ok";
  switch (s.code()) {
    case StatusCode::kNotImplemented: return "api";
    case StatusCode::kTimeout: return "hang";
    case StatusCode::kOutOfMemory: return "oom";
    default: return "error";
  }
}

inline void PrintHeader(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

/// Prints the engine-configuration overview (the Table IV analogue: which
/// policy stack each emulated engine runs).
inline void PrintEngineTable() {
  PrintHeader("Engine configurations (Table IV analogue)");
  std::printf("%-10s %-8s %-12s %-10s %-8s %-6s\n", "engine", "dynamic",
              "reduce", "graphfuse", "opfuse", "spill");
  for (EngineKind kind : AllEngines()) {
    Config c = Config::Preset(kind);
    const char* reduce = c.reduce_policy == ReducePolicy::kAuto ? "auto"
                         : c.reduce_policy == ReducePolicy::kTree ? "tree"
                                                                  : "shuffle";
    std::printf("%-10s %-8s %-12s %-10s %-8s %-6s\n", EngineKindName(kind),
                c.dynamic_tiling ? "yes" : "no", reduce,
                c.graph_fusion ? "yes" : "no", c.op_fusion ? "yes" : "no",
                c.enable_spill ? "yes" : "no");
  }
}

}  // namespace xorbits::bench

#endif  // XORBITS_BENCH_BENCH_UTIL_H_
