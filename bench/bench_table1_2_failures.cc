// Reproduces Table I (number of failed TPC-H queries per framework per
// scale factor) and Table II (failure reasons at the largest scale).
//
// Scale tiers map the paper's SF10/SF100/SF1000 onto laptop-size data with a
// fixed per-band memory budget, preserving the data-to-memory ratios that
// drive the paper's failures. PySpark's API-compatibility failures (3
// queries at every SF in the paper) are injected from the documented list;
// every other failure below is produced organically by the engine (OOM from
// band budgets, hangs from the scheduler deadline).

#include <cstdio>
#include <filesystem>
#include <map>
#include <string>

#include "bench_util.h"
#include "io/tpch_gen.h"
#include "workloads/tpch_queries.h"

namespace xorbits::bench {
namespace {

struct Tier {
  const char* label;
  double sf;
};

// PySpark pandas-API ports that fail on missing APIs (paper Table II row 1).
bool SparkApiFails(int q) { return q == 13 || q == 21 || q == 22; }

void Run() {
  const Tier tiers[] = {{"SF10", 0.002}, {"SF100", 0.02}, {"SF1000", 0.1}};
  const int64_t band_mb = 12;
  const int64_t chunk_kb = 2048;
  const int64_t deadline_ms = 90000;

  PrintEngineTable();
  PrintHeader("Workloads (Table III analogue)");
  std::printf("tier     scale  lineitem_rows  band_budget  bands\n");
  for (const Tier& t : tiers) {
    std::printf("%-8s %.3f  ~%-12d %lldMB         4\n", t.label, t.sf,
                static_cast<int>(6000000 * t.sf),
                static_cast<long long>(band_mb));
  }

  // fail_counts[engine][tier]; reasons at the largest tier.
  std::map<EngineKind, std::map<std::string, int>> reasons;
  std::map<EngineKind, std::vector<int>> fails;

  for (const Tier& t : tiers) {
    const std::string dir =
        (std::filesystem::temp_directory_path() /
         (std::string("xorbits_t12_") + t.label))
            .string();
    Status gen = io::tpch::GenerateFiles(t.sf, dir);
    if (!gen.ok()) {
      std::printf("generator failed: %s\n", gen.ToString().c_str());
      return;
    }
    PrintHeader((std::string("Per-query outcomes at ") + t.label).c_str());
    std::printf("%-10s", "engine");
    for (int q = 1; q <= 22; ++q) std::printf(" Q%-3d", q);
    std::printf("\n");
    for (EngineKind kind : AllEngines()) {
      std::printf("%-10s", EngineKindName(kind));
      int failed = 0;
      for (int q = 1; q <= 22; ++q) {
        std::string cls;
        if (kind == EngineKind::kSparkLike && SparkApiFails(q)) {
          cls = "api";
        } else {
          RunStats stats = TimedRun(
              BenchConfig(kind, 2, 2, band_mb, chunk_kb, deadline_ms),
              [&](core::Session* s) {
                return workloads::tpch::RunQuery(q, s, dir).status();
              });
          cls = Classify(stats.status);
        }
        if (cls != "ok") {
          ++failed;
          if (t.sf == tiers[2].sf) reasons[kind][cls]++;
        }
        std::printf(" %-4s", cls == "ok" ? "." : cls.c_str());
      }
      std::printf("  (%d failed)\n", failed);
      fails[kind].push_back(failed);
    }
    std::filesystem::remove_all(dir);
  }

  PrintHeader("Table I: number of failed TPC-H queries");
  std::printf("%-8s", "SF");
  for (EngineKind k : AllEngines()) std::printf(" %-8s", EngineKindName(k));
  std::printf("\n");
  for (size_t t = 0; t < 3; ++t) {
    std::printf("%-8s", tiers[t].label);
    for (EngineKind k : AllEngines()) std::printf(" %-8d", fails[k][t]);
    std::printf("\n");
  }
  std::printf("(paper, SF10/100/1000: pandas 0/17/22, pyspark 3/3/4, "
              "dask 1/1/5, modin 0/1/22)\n");

  PrintHeader("Table II: failure reasons at the largest scale");
  std::printf("%-18s", "reason");
  for (EngineKind k : AllEngines()) std::printf(" %-8s", EngineKindName(k));
  std::printf("\n");
  for (const char* r : {"api", "hang", "oom", "error"}) {
    std::printf("%-18s", r);
    for (EngineKind k : AllEngines()) std::printf(" %-8d", reasons[k][r]);
    std::printf("\n");
  }
  std::printf("(paper, pyspark/dask/modin: api 3/0/0, hang 0/2/0, "
              "oom 1/3/22)\n");
}

}  // namespace
}  // namespace xorbits::bench

int main(int argc, char** argv) {
  xorbits::bench::InitTrace(argc, argv);
  xorbits::bench::Run();
  xorbits::bench::FinishTrace();
  return 0;
}
