// Reproduces Fig. 8(c) and 8(d): weak-scaling throughput of the QR and
// linear-regression array workloads. Problem size grows with the socket
// (band) count so per-socket work is constant; throughput = problem bytes /
// modeled cluster time. Xorbits (auto rechunk + NUMA-aware locality) is
// compared against the Dask-like static configuration, mirroring the
// paper's Xorbits-vs-Dask comparison.

#include <cstdio>

#include "bench_util.h"
#include "workloads/array_workloads.h"

namespace xorbits::bench {
namespace {

void Run() {
  const int64_t kBaseRows = 60000;  // rows per socket
  const int64_t kQrCols = 32;
  const int64_t kLrFeatures = 16;

  PrintHeader("Fig. 8(c): QR decomposition, weak scaling");
  std::printf("%-8s %-10s %-12s %-14s %-14s\n", "sockets", "engine", "rows",
              "sim_s", "MB/s");
  for (int sockets : {1, 2, 4}) {
    const int64_t rows = kBaseRows * sockets;
    for (EngineKind kind : {EngineKind::kXorbits, EngineKind::kDaskLike}) {
      const int workers = sockets > 2 ? 2 : 1;
      const int bands = sockets / workers;
      RunStats stats = TimedRun(
          BenchConfig(kind, workers, bands, /*band_mb=*/256,
                      /*chunk_kb=*/2048, /*deadline_ms=*/300000),
          [&](core::Session* s) {
            return workloads::arrays::RunQR(s, rows, kQrCols).status();
          });
      const double mb = rows * kQrCols * 8.0 / 1048576.0;
      std::printf("%-8d %-10s %-12lld %-14.3f %-14.1f %s\n", sockets,
                  EngineKindName(kind), static_cast<long long>(rows),
                  stats.sim_s, stats.sim_s > 0 ? mb / stats.sim_s : 0.0,
                  stats.status.ok() ? "" : stats.status.ToString().c_str());
    }
  }

  PrintHeader("Fig. 8(d): linear regression, weak scaling");
  std::printf("%-8s %-10s %-12s %-14s %-14s\n", "sockets", "engine", "rows",
              "sim_s", "MB/s");
  for (int sockets : {1, 2, 4}) {
    const int64_t rows = kBaseRows * 4 * sockets;
    for (EngineKind kind : {EngineKind::kXorbits, EngineKind::kDaskLike}) {
      const int workers = sockets > 2 ? 2 : 1;
      const int bands = sockets / workers;
      RunStats stats = TimedRun(
          BenchConfig(kind, workers, bands, /*band_mb=*/256,
                      /*chunk_kb=*/2048, /*deadline_ms=*/300000),
          [&](core::Session* s) {
            return workloads::arrays::RunLinearRegression(s, rows,
                                                          kLrFeatures)
                .status();
          });
      const double mb = rows * kLrFeatures * 8.0 / 1048576.0;
      std::printf("%-8d %-10s %-12lld %-14.3f %-14.1f %s\n", sockets,
                  EngineKindName(kind), static_cast<long long>(rows),
                  stats.sim_s, stats.sim_s > 0 ? mb / stats.sim_s : 0.0,
                  stats.status.ok() ? "" : stats.status.ToString().c_str());
    }
  }
  std::printf("\n(paper: xorbits outperforms dask by 5.88x on LR and 1.74x "
              "on QR on average; throughput grows with sockets)\n");
}

}  // namespace
}  // namespace xorbits::bench

int main(int argc, char** argv) {
  xorbits::bench::InitTrace(argc, argv);
  xorbits::bench::Run();
  xorbits::bench::FinishTrace();
  return 0;
}
