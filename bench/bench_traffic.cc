// Traffic bench: multi-tenant serving under closed-loop load.
//
// N clients each own a tenant session on one shared SessionManager cluster
// and submit a fixed number of mixed queries (Census, TPCx-AI UC10,
// PLAsTiCC) back-to-back. Shed submissions (kOverloaded) are retried after
// the server-supplied backoff hint, so per-query latency is the full
// client-perceived time including admission queueing and retries. Reports
// p50/p95/p99 latency (aggregate and per session), throughput, and shed
// rate at N = {1, 4, 16}; writes BENCH_traffic.json.
//
// The cross-session result cache (DESIGN.md §9) is ON by default: the
// query mix is deterministic and repeated, so once each distinct plan has
// been published, later submissions rewrite into fetches of shared
// `cache/` chunks. Each scenario reports `hit_rate` =
// cache_hits / (cache_hits + cache_misses) from the cluster metrics, and
// every completed query's result checksum is compared against a cache-off
// solo baseline computed up front — cache-served results must be
// byte-identical to recomputed ones. `--no-cache` disables the cache for
// A/B comparison (see EXPERIMENTS.md for the regeneration recipe).
//
// Acceptance tracked here: every query eventually completes OK at every
// N, checksums match the cache-off baseline, with weighted-fair
// scheduling on no session's p99 at N=4 may exceed 3x the solo (N=1)
// p99, and with the cache on the N=16 hit_rate must reach 0.5 — see
// EXPERIMENTS.md.
//
// `--smoke` runs a seconds-long variant (N = {1, 2}, fewer/smaller
// queries) for CI; the fairness and hit-rate bars are only enforced in
// the full run.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/session_manager.h"
#include "workloads/pipelines.h"

namespace xorbits::bench {
namespace {

struct TrafficParams {
  std::vector<int> session_counts;
  int queries_per_client = 10;
  int64_t census_rows = 50000;
  int64_t tpcxai_transactions = 30000;
  int64_t plasticc_rows = 30000;
  bool enable_cache = true;
};

Config TrafficConfig(bool enable_cache) {
  // 8 bands: N=4 contends without saturating (the fairness bar measures
  // scheduling, not raw capacity starvation); N=16 oversubscribes 2:1.
  Config c = BenchConfig(EngineKind::kXorbits, /*workers=*/4,
                         /*bands_per_worker=*/2, /*band_mb=*/256,
                         /*chunk_kb=*/64, /*deadline_ms=*/120000);
  c.spill_dir = "/tmp/xorbits_bench_spill_traffic";
  // Multi-tenant serving policy: enough slots that N=4 co-runs without
  // shedding (the fairness bar assumes contention, not starvation), few
  // enough that N=16 overloads and exercises queue -> shed degradation.
  c.max_concurrent_sessions = 6;
  c.admission_queue_depth = 4;
  c.admission_timeout_ms = 100;
  c.session_memory_quota_bytes = 32LL << 20;  // generous: accounting, not
                                              // failure, is under test here
  // Cross-session result cache: the repeated deterministic query mix is
  // exactly the sharing pattern the cache exists for. Cached bytes are
  // charged to this cluster budget, never to a tenant quota.
  c.enable_result_cache = enable_cache;
  c.result_cache_budget_bytes = 64LL << 20;
  return c;
}

/// Exact result checksum (FNV-1a over names, dtypes, validity and raw value
/// bytes): cache-served frames must equal the cache-off baseline.
uint64_t Checksum(const dataframe::DataFrame& df) {
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](const std::string& bytes) {
    for (unsigned char b : bytes) {
      h ^= b;
      h *= 1099511628211ULL;
    }
  };
  for (int ci = 0; ci < df.num_columns(); ++ci) {
    mix(df.column_name(ci));
    const dataframe::Column& c = df.column(ci);
    std::string buf;
    buf += static_cast<char>(c.dtype());
    for (int64_t i = 0; i < c.length(); ++i) {
      buf += c.IsValid(i) ? 'v' : 'n';
      if (c.IsValid(i)) c.AppendKeyBytes(i, &buf);
    }
    mix(buf);
  }
  return h;
}

/// Runs one query of `kind` on `session`, returning the result frame.
Result<dataframe::DataFrame> RunQuery(core::Session* session, int kind,
                                      const TrafficParams& p) {
  switch (kind) {
    case 0:
      return workloads::pipelines::Census(session, p.census_rows, 44);
    case 1:
      return workloads::pipelines::TpcxAiUC10(session,
                                              p.tpcxai_transactions,
                                              /*num_customers=*/500);
    default:
      return workloads::pipelines::Plasticc(session, p.plasticc_rows,
                                            /*num_objects=*/300,
                                            /*seed=*/45);
  }
}

/// One client's closed loop: submit, retry-on-overload, record.
struct ClientStats {
  int64_t session_id = -1;
  std::vector<double> latency_ms;  // per completed query, incl. retries
  int64_t completed = 0;
  int64_t shed = 0;    // overloaded responses (each is one retry cycle)
  int64_t failed = 0;  // terminal non-overload failures
  int64_t mismatched = 0;  // results whose checksum diverged from baseline
};

void RunClient(core::Session* session, int client_idx,
               const TrafficParams& p, const uint64_t* expected,
               ClientStats* out) {
  out->session_id = session->session_id();
  constexpr int kMaxRetries = 200;
  for (int q = 0; q < p.queries_per_client; ++q) {
    const int kind = (client_idx + q) % 3;
    const auto t0 = std::chrono::steady_clock::now();
    Status st = Status::OK();
    for (int attempt = 0; attempt <= kMaxRetries; ++attempt) {
      Result<dataframe::DataFrame> result = RunQuery(session, kind, p);
      st = result.status();
      if (st.ok() && expected != nullptr &&
          Checksum(*result) != expected[kind]) {
        ++out->mismatched;
      }
      if (!st.IsOverloaded()) break;
      // Server-guided backoff: the hint scales with queue pressure.
      ++out->shed;
      const int64_t hint = std::max<int64_t>(st.backoff_hint_ms(), 1);
      std::this_thread::sleep_for(std::chrono::milliseconds(hint));
    }
    const auto t1 = std::chrono::steady_clock::now();
    if (st.ok()) {
      ++out->completed;
      out->latency_ms.push_back(
          std::chrono::duration<double, std::milli>(t1 - t0).count());
    } else {
      ++out->failed;
      std::fprintf(stderr, "client %d query %d failed: %s\n", client_idx, q,
                   st.ToString().c_str());
    }
  }
}

double Percentile(std::vector<double> v, double pct) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double rank = pct / 100.0 * static_cast<double>(v.size());
  auto idx = static_cast<size_t>(std::ceil(rank));
  if (idx == 0) idx = 1;
  if (idx > v.size()) idx = v.size();
  return v[idx - 1];
}

struct ScenarioResult {
  int sessions = 0;
  double wall_s = 0;
  double throughput_qps = 0;
  int64_t completed = 0;
  int64_t shed = 0;
  int64_t failed = 0;
  double shed_rate = 0;  // shed / (completed + shed + failed) submissions
  double p50 = 0, p95 = 0, p99 = 0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  double hit_rate = 0;  // hits / (hits + misses); 0 when cache disabled
  int64_t mismatched = 0;
  std::vector<ClientStats> clients;
};

ScenarioResult RunScenario(int num_sessions, const TrafficParams& p,
                           const uint64_t* expected) {
  ScenarioResult res;
  res.sessions = num_sessions;

  Config config = TrafficConfig(p.enable_cache);
  MaybeAttachTrace(&config);
  auto mgr = core::SessionManager::Create(config);
  if (!mgr.ok()) {
    std::fprintf(stderr, "session manager: %s\n",
                 mgr.status().ToString().c_str());
    res.failed = num_sessions * p.queries_per_client;
    return res;
  }

  std::vector<std::unique_ptr<core::Session>> sessions;
  sessions.reserve(num_sessions);
  for (int i = 0; i < num_sessions; ++i) {
    sessions.push_back((*mgr)->CreateSession());
  }

  res.clients.resize(num_sessions);
  std::vector<std::thread> threads;
  threads.reserve(num_sessions);
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < num_sessions; ++i) {
    threads.emplace_back(RunClient, sessions[i].get(), i, std::cref(p),
                         expected, &res.clients[i]);
  }
  for (std::thread& t : threads) t.join();
  const auto t1 = std::chrono::steady_clock::now();
  res.wall_s = std::chrono::duration<double>(t1 - t0).count();

  // Cache probes are counted on the cluster metrics (the cache is a
  // cluster service); snapshot before the sessions and manager go away.
  const MetricsSnapshot cluster = (*mgr)->metrics().Snapshot();
  res.cache_hits = cluster.Counter("cache_hits");
  res.cache_misses = cluster.Counter("cache_misses");
  const int64_t probes = res.cache_hits + res.cache_misses;
  res.hit_rate = probes > 0
                     ? static_cast<double>(res.cache_hits) /
                           static_cast<double>(probes)
                     : 0.0;

  std::vector<double> all;
  for (const ClientStats& c : res.clients) {
    res.completed += c.completed;
    res.shed += c.shed;
    res.failed += c.failed;
    res.mismatched += c.mismatched;
    all.insert(all.end(), c.latency_ms.begin(), c.latency_ms.end());
  }
  const int64_t submissions = res.completed + res.shed + res.failed;
  res.shed_rate = submissions > 0
                      ? static_cast<double>(res.shed) /
                            static_cast<double>(submissions)
                      : 0.0;
  res.throughput_qps =
      res.wall_s > 0 ? static_cast<double>(res.completed) / res.wall_s : 0.0;
  res.p50 = Percentile(all, 50);
  res.p95 = Percentile(all, 95);
  res.p99 = Percentile(all, 99);

  std::printf(
      "N=%-3d wall %6.2fs  %6.2f q/s  completed %4lld shed %4lld "
      "failed %lld  shed_rate %.3f  hit_rate %.3f (%lld/%lld)  "
      "p50 %7.1fms p95 %7.1fms p99 %7.1fms\n",
      num_sessions, res.wall_s, res.throughput_qps,
      static_cast<long long>(res.completed),
      static_cast<long long>(res.shed), static_cast<long long>(res.failed),
      res.shed_rate, res.hit_rate, static_cast<long long>(res.cache_hits),
      static_cast<long long>(probes), res.p50, res.p95, res.p99);
  if (res.mismatched > 0) {
    std::printf("      CHECKSUM MISMATCH: %lld results diverged from the "
                "cache-off baseline\n",
                static_cast<long long>(res.mismatched));
  }
  for (const ClientStats& c : res.clients) {
    std::printf("      session %-3lld completed %3lld shed %3lld "
                "p50 %7.1fms p99 %7.1fms\n",
                static_cast<long long>(c.session_id),
                static_cast<long long>(c.completed),
                static_cast<long long>(c.shed),
                Percentile(c.latency_ms, 50), Percentile(c.latency_ms, 99));
  }
  return res;
}

void WriteJson(const char* path, const std::vector<ScenarioResult>& runs,
               const TrafficParams& p, bool smoke, double solo_p99,
               double n4_worst_ratio, bool fairness_pass,
               bool checksums_identical) {
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"traffic_multitenant\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
  std::fprintf(f, "  \"result_cache\": %s,\n",
               p.enable_cache ? "true" : "false");
  std::fprintf(f, "  \"checksums_match_cache_off_baseline\": %s,\n",
               checksums_identical ? "true" : "false");
  std::fprintf(f,
               "  \"workloads\": [\"census\", \"tpcxai_uc10\", "
               "\"plasticc\"],\n");
  std::fprintf(f, "  \"queries_per_client\": %d,\n", p.queries_per_client);
  std::fprintf(f, "  \"solo_p99_ms\": %.2f,\n", solo_p99);
  std::fprintf(f, "  \"scenarios\": [\n");
  bool first = true;
  for (const ScenarioResult& r : runs) {
    if (!first) std::fprintf(f, ",\n");
    first = false;
    std::fprintf(
        f,
        "    {\"sessions\": %d, \"wall_s\": %.3f, "
        "\"throughput_qps\": %.3f, \"completed\": %lld, \"shed\": %lld, "
        "\"failed\": %lld, \"shed_rate\": %.4f, "
        "\"cache_hits\": %lld, \"cache_misses\": %lld, "
        "\"hit_rate\": %.4f, "
        "\"latency_ms\": {\"p50\": %.2f, \"p95\": %.2f, \"p99\": %.2f},\n"
        "     \"per_session\": [",
        r.sessions, r.wall_s, r.throughput_qps,
        static_cast<long long>(r.completed), static_cast<long long>(r.shed),
        static_cast<long long>(r.failed), r.shed_rate,
        static_cast<long long>(r.cache_hits),
        static_cast<long long>(r.cache_misses), r.hit_rate, r.p50, r.p95,
        r.p99);
    bool cfirst = true;
    for (const ClientStats& c : r.clients) {
      if (!cfirst) std::fprintf(f, ", ");
      cfirst = false;
      std::fprintf(f,
                   "{\"session\": %lld, \"completed\": %lld, "
                   "\"shed\": %lld, \"p50\": %.2f, \"p99\": %.2f}",
                   static_cast<long long>(c.session_id),
                   static_cast<long long>(c.completed),
                   static_cast<long long>(c.shed),
                   Percentile(c.latency_ms, 50),
                   Percentile(c.latency_ms, 99));
    }
    std::fprintf(f, "]}");
  }
  std::fprintf(f, "\n  ],\n");
  std::fprintf(f,
               "  \"fairness\": {\"n4_max_p99_over_solo\": %.3f, "
               "\"bound\": 3.0, \"pass\": %s}\n",
               n4_worst_ratio, fairness_pass ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

}  // namespace
}  // namespace xorbits::bench

int main(int argc, char** argv) {
  using namespace xorbits;
  using namespace xorbits::bench;

  InitTrace(argc, argv);
  bool smoke = false;
  bool no_cache = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--no-cache") == 0) no_cache = true;
  }

  TrafficParams p;
  p.enable_cache = !no_cache;
  if (smoke) {
    p.session_counts = {1, 2};
    p.queries_per_client = 2;
    p.census_rows = 8000;
    p.tpcxai_transactions = 5000;
    p.plasticc_rows = 5000;
  } else {
    p.session_counts = {1, 4, 16};
  }

  PrintHeader("Traffic: multi-tenant closed-loop serving");
  std::printf("clients x %d queries each (census / tpcxai_uc10 / "
              "plasticc mix), shed submissions retried after the "
              "server's backoff hint, result cache %s\n\n",
              p.queries_per_client, p.enable_cache ? "ON" : "OFF");

  // Cache-off solo baseline: the reference checksum for every query kind.
  // Every result any scenario completes — cache-served or recomputed —
  // must match it byte for byte.
  uint64_t expected[3] = {0, 0, 0};
  {
    Config base_config = TrafficConfig(/*enable_cache=*/false);
    bool baseline_ok = true;
    for (int kind = 0; kind < 3; ++kind) {
      core::Session solo(base_config);
      Result<dataframe::DataFrame> r = RunQuery(&solo, kind, p);
      if (!r.ok()) {
        std::fprintf(stderr, "baseline query %d failed: %s\n", kind,
                     r.status().ToString().c_str());
        baseline_ok = false;
        continue;
      }
      expected[kind] = Checksum(*r);
    }
    if (!baseline_ok) {
      std::printf("traffic acceptance: FAIL (cache-off baseline)\n");
      return 1;
    }
  }

  std::vector<ScenarioResult> runs;
  for (int n : p.session_counts) {
    runs.push_back(RunScenario(n, p, expected));
  }

  // Fairness bar (full mode): with WFQ on, no single session at N=4 may
  // see p99 beyond 3x the solo p99.
  const double solo_p99 = runs.empty() ? 0.0 : runs.front().p99;
  double n4_worst_ratio = 0.0;
  for (const ScenarioResult& r : runs) {
    if (r.sessions != 4 || solo_p99 <= 0) continue;
    for (const ClientStats& c : r.clients) {
      const double ratio = Percentile(c.latency_ms, 99) / solo_p99;
      n4_worst_ratio = std::max(n4_worst_ratio, ratio);
    }
  }

  bool ok = true;
  bool checksums_identical = true;
  for (const ScenarioResult& r : runs) {
    if (r.failed > 0 || r.completed == 0) {
      std::printf("FAIL: N=%d had %lld terminal failures\n", r.sessions,
                  static_cast<long long>(r.failed));
      ok = false;
    }
    if (r.mismatched > 0) {
      std::printf("FAIL: N=%d had %lld results differing from the "
                  "cache-off baseline\n",
                  r.sessions, static_cast<long long>(r.mismatched));
      checksums_identical = false;
      ok = false;
    }
  }
  bool fairness_pass = true;
  if (!smoke && n4_worst_ratio > 3.0) {
    std::printf("FAIL: N=4 worst per-session p99 is %.2fx solo "
                "(bound 3.0x)\n",
                n4_worst_ratio);
    fairness_pass = false;
    ok = false;
  }
  // Hit-rate bar (full mode, cache on): the N=16 mix revisits each of the
  // three plans ~53 times, so the cache must serve at least half of all
  // probes or it is not doing its job.
  if (!smoke && p.enable_cache) {
    for (const ScenarioResult& r : runs) {
      if (r.sessions == 16 && r.hit_rate < 0.5) {
        std::printf("FAIL: N=16 hit_rate %.3f below the 0.5 bar\n",
                    r.hit_rate);
        ok = false;
      }
    }
  }

  WriteJson("BENCH_traffic.json", runs, p, smoke, solo_p99, n4_worst_ratio,
            fairness_pass, checksums_identical);
  std::printf("traffic acceptance: %s\n", ok ? "PASS" : "FAIL");
  FinishTrace();
  return ok ? 0 : 1;
}
