// Reproduces Fig. 8(b): TPC-H ad-hoc query performance. Queries run per
// engine at two scale tiers with a memory budget generous enough that most
// engines finish (the paper times the successful queries and excludes
// failures). Reported as total modeled cluster time relative to Xorbits,
// over the queries every engine completed.

#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "io/tpch_gen.h"
#include "workloads/tpch_queries.h"

namespace xorbits::bench {
namespace {

// PySpark API failures as in Table I (see bench_table1_2_failures).
bool SparkApiFails(int q) { return q == 13 || q == 21 || q == 22; }

void RunTier(const char* label, double sf) {
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       (std::string("xorbits_f8b_") + label))
          .string();
  Status gen = io::tpch::GenerateFiles(sf, dir);
  if (!gen.ok()) {
    std::printf("generator failed: %s\n", gen.ToString().c_str());
    return;
  }
  std::map<EngineKind, std::map<int, double>> sim;
  std::map<EngineKind, int> ok_count;
  for (EngineKind kind : AllEngines()) {
    for (int q = 1; q <= 22; ++q) {
      if (kind == EngineKind::kSparkLike && SparkApiFails(q)) continue;
      RunStats stats = TimedRun(
          BenchConfig(kind, 2, 2, /*band_mb=*/64, /*chunk_kb=*/1024,
                      /*deadline_ms=*/120000),
          [&](core::Session* s) {
            return workloads::tpch::RunQuery(q, s, dir).status();
          });
      if (stats.status.ok()) {
        sim[kind][q] = stats.sim_s;
        ok_count[kind]++;
      }
    }
  }
  // Queries completed by every engine.
  std::vector<int> common;
  for (int q = 1; q <= 22; ++q) {
    bool all = true;
    for (EngineKind kind : AllEngines()) {
      if (!sim[kind].count(q)) {
        all = false;
        break;
      }
    }
    if (all) common.push_back(q);
  }
  PrintHeader((std::string("Fig. 8(b) at ") + label).c_str());
  std::printf("common successful queries: %zu of 22\n", common.size());
  std::printf("%-10s %-10s %-14s %-10s\n", "engine", "ok", "total_sim_s",
              "relative");
  double xorbits_total = 0;
  for (int q : common) xorbits_total += sim[EngineKind::kXorbits][q];
  for (EngineKind kind : AllEngines()) {
    double total = 0;
    for (int q : common) total += sim[kind][q];
    std::printf("%-10s %-10d %-14.3f %-10.2f\n", EngineKindName(kind),
                ok_count[kind], total,
                xorbits_total > 0 ? total / xorbits_total : 0.0);
  }
  std::printf("(relative time vs xorbits = 1.0; paper: xorbits fastest, "
              "pyspark closest competitor, dask/modin slower or failing)\n");
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace xorbits::bench

int main(int argc, char** argv) {
  xorbits::bench::InitTrace(argc, argv);
  xorbits::bench::PrintEngineTable();
  xorbits::bench::RunTier("SF100", 0.02);
  xorbits::bench::RunTier("SF1000", 0.05);
  xorbits::bench::FinishTrace();
  return 0;
}
