// google-benchmark microbenchmarks of the kernels that back the paper-level
// results: groupby aggregation, hash join, sort, fused vs. unfused
// elementwise evaluation, TSQR blocks, chunk serialization, the coloring
// algorithm, and storage put/get.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "dataframe/groupby.h"
#include "dataframe/join.h"
#include "dataframe/kernels.h"
#include "graph/coloring.h"
#include "io/serialize.h"
#include "io/tpch_gen.h"
#include "operators/expr.h"
#include "services/storage_service.h"
#include "tensor/ndarray.h"

namespace {

using namespace xorbits;  // NOLINT
using dataframe::AggFunc;
using dataframe::Column;
using dataframe::DataFrame;

DataFrame MakeFrame(int64_t n, int64_t cardinality) {
  Rng rng(7);
  std::vector<int64_t> k(n), v(n);
  std::vector<double> x(n);
  for (int64_t i = 0; i < n; ++i) {
    k[i] = rng.UniformInt(0, cardinality - 1);
    v[i] = i;
    x[i] = rng.Uniform();
  }
  return DataFrame::Make({"k", "v", "x"},
                         {Column::Int64(k), Column::Int64(v),
                          Column::Float64(x)})
      .MoveValue();
}

void BM_GroupByAgg(benchmark::State& state) {
  DataFrame df = MakeFrame(state.range(0), state.range(1));
  for (auto _ : state) {
    auto r = dataframe::GroupByAgg(df, {"k"},
                                   {{"v", AggFunc::kSum, "s"},
                                    {"x", AggFunc::kMean, "m"}});
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GroupByAgg)->Args({100000, 100})->Args({100000, 50000});

void BM_HashJoin(benchmark::State& state) {
  DataFrame left = MakeFrame(state.range(0), 1000);
  DataFrame right = MakeFrame(1000, 1000);
  dataframe::MergeOptions opts;
  opts.on = {"k"};
  for (auto _ : state) {
    auto r = dataframe::Merge(left, right, opts);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HashJoin)->Arg(100000);

void BM_SortValues(benchmark::State& state) {
  DataFrame df = MakeFrame(state.range(0), 10000);
  for (auto _ : state) {
    auto r = dataframe::SortValues(df, {"k", "v"});
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SortValues)->Arg(100000);

void BM_EvalFused(benchmark::State& state) {
  using namespace operators;  // NOLINT
  DataFrame df = MakeFrame(state.range(0), 1000);
  // (x * 2 + 1) compared in one pass — the fused elementwise kernel.
  ExprPtr expr = CompareExpr(
      BinaryExpr(BinaryExpr(Col("x"), dataframe::BinOp::kMul, Lit(2.0)),
                 dataframe::BinOp::kAdd, Lit(1.0)),
      dataframe::CmpOp::kGt, Lit(1.7));
  for (auto _ : state) {
    auto r = EvalExpr(df, *expr);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EvalFused)->Arg(100000);

void BM_EvalUnfused(benchmark::State& state) {
  // Same computation with materialized intermediates (what operator-level
  // fusion removes).
  DataFrame df = MakeFrame(state.range(0), 1000);
  for (auto _ : state) {
    auto t1 = dataframe::BinaryOpScalar(*df.GetColumn("x").ValueOrDie(),
                                        dataframe::Scalar::Float(2.0),
                                        dataframe::BinOp::kMul);
    auto t2 = dataframe::BinaryOpScalar(*t1, dataframe::Scalar::Float(1.0),
                                        dataframe::BinOp::kAdd);
    auto r = dataframe::CompareScalar(*t2, dataframe::Scalar::Float(1.7),
                                      dataframe::CmpOp::kGt);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EvalUnfused)->Arg(100000);

void BM_QRBlock(benchmark::State& state) {
  Rng rng(3);
  tensor::NDArray a =
      tensor::NDArray::RandomNormal({state.range(0), 32}, rng);
  for (auto _ : state) {
    tensor::NDArray q, r;
    auto st = tensor::QRDecompose(a, &q, &r);
    benchmark::DoNotOptimize(st);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_QRBlock)->Arg(4096);

void BM_SerializeChunk(benchmark::State& state) {
  auto chunk = services::MakeChunk(MakeFrame(state.range(0), 1000));
  for (auto _ : state) {
    auto buf = services::SerializeChunk(*chunk);
    auto back = services::DeserializeChunk(*buf);
    benchmark::DoNotOptimize(back);
  }
  state.SetBytesProcessed(state.iterations() * chunk->nbytes());
}
BENCHMARK(BM_SerializeChunk)->Arg(50000);

void BM_ColoringFusion(benchmark::State& state) {
  // Layered DAG: w nodes per layer, each feeding the next layer.
  const int layers = 20, width = static_cast<int>(state.range(0));
  std::vector<std::vector<int>> succ(layers * width);
  for (int l = 0; l + 1 < layers; ++l) {
    for (int i = 0; i < width; ++i) {
      succ[l * width + i].push_back((l + 1) * width + i);
    }
  }
  for (auto _ : state) {
    auto colors = graph::ColorForFusion(succ);
    benchmark::DoNotOptimize(colors);
  }
  state.SetItemsProcessed(state.iterations() * layers * width);
}
BENCHMARK(BM_ColoringFusion)->Arg(64);

void BM_StoragePutGet(benchmark::State& state) {
  Config config;
  config.num_workers = 1;
  config.bands_per_worker = 2;
  config.band_memory_limit = 1LL << 30;
  Metrics metrics;
  services::StorageService store(config, &metrics);
  auto chunk = services::MakeChunk(MakeFrame(10000, 100));
  int64_t i = 0;
  for (auto _ : state) {
    std::string key = "k" + std::to_string(i++);
    benchmark::DoNotOptimize(store.Put(key, chunk, 0));
    benchmark::DoNotOptimize(store.Get(key, 1));
    benchmark::DoNotOptimize(store.Delete(key));
  }
}
BENCHMARK(BM_StoragePutGet);

void BM_TpchGen(benchmark::State& state) {
  for (auto _ : state) {
    auto t = io::tpch::Generate(0.001);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_TpchGen);

}  // namespace

BENCHMARK_MAIN();
