// google-benchmark microbenchmarks of the kernels that back the paper-level
// results: groupby aggregation, hash join, sort, fused vs. unfused
// elementwise evaluation, TSQR blocks, chunk serialization, the coloring
// algorithm, and storage put/get.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/buffer.h"
#include "common/exchange_stats.h"
#include "common/late_stats.h"
#include "core/xorbits.h"
#include "io/xparquet.h"
#include "optimizer/pass.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "dataframe/groupby.h"
#include "dataframe/join.h"
#include "dataframe/kernels.h"
#include "graph/coloring.h"
#include "io/serialize.h"
#include "io/tpch_gen.h"
#include "operators/expr.h"
#include "services/storage_service.h"
#include "tensor/ndarray.h"
#include "workloads/pipelines.h"

namespace {

using namespace xorbits;  // NOLINT
using dataframe::AggFunc;
using dataframe::Column;
using dataframe::DataFrame;

DataFrame MakeFrame(int64_t n, int64_t cardinality) {
  Rng rng(7);
  std::vector<int64_t> k(n), v(n);
  std::vector<double> x(n);
  for (int64_t i = 0; i < n; ++i) {
    k[i] = rng.UniformInt(0, cardinality - 1);
    v[i] = i;
    x[i] = rng.Uniform();
  }
  return DataFrame::Make({"k", "v", "x"},
                         {Column::Int64(k), Column::Int64(v),
                          Column::Float64(x)})
      .MoveValue();
}

/// String-keyed variant of MakeFrame; `encoded` selects the dictionary
/// representation of the key column (values identical either way).
DataFrame MakeStringFrame(int64_t n, int64_t cardinality, bool encoded) {
  Rng rng(11);
  std::vector<std::string> k(n);
  std::vector<int64_t> v(n);
  std::vector<double> x(n);
  for (int64_t i = 0; i < n; ++i) {
    k[i] = "key_" + std::to_string(rng.UniformInt(0, cardinality - 1));
    v[i] = i;
    x[i] = rng.Uniform();
  }
  Column kc = Column::String(std::move(k));
  if (encoded) kc = kc.DictEncode();
  return DataFrame::Make({"k", "v", "x"},
                         {std::move(kc), Column::Int64(std::move(v)),
                          Column::Float64(std::move(x))})
      .MoveValue();
}

void BM_GroupByAgg(benchmark::State& state) {
  DataFrame df = MakeFrame(state.range(0), state.range(1));
  for (auto _ : state) {
    auto r = dataframe::GroupByAgg(df, {"k"},
                                   {{"v", AggFunc::kSum, "s"},
                                    {"x", AggFunc::kMean, "m"}});
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GroupByAgg)->Args({100000, 100})->Args({100000, 50000});

void BM_HashJoin(benchmark::State& state) {
  DataFrame left = MakeFrame(state.range(0), 1000);
  DataFrame right = MakeFrame(1000, 1000);
  dataframe::MergeOptions opts;
  opts.on = {"k"};
  for (auto _ : state) {
    auto r = dataframe::Merge(left, right, opts);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HashJoin)->Arg(100000);

void BM_SortValues(benchmark::State& state) {
  DataFrame df = MakeFrame(state.range(0), 10000);
  for (auto _ : state) {
    auto r = dataframe::SortValues(df, {"k", "v"});
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SortValues)->Arg(100000);

void BM_EvalFused(benchmark::State& state) {
  using namespace operators;  // NOLINT
  DataFrame df = MakeFrame(state.range(0), 1000);
  // (x * 2 + 1) compared in one pass — the fused elementwise kernel.
  ExprPtr expr = CompareExpr(
      BinaryExpr(BinaryExpr(Col("x"), dataframe::BinOp::kMul, Lit(2.0)),
                 dataframe::BinOp::kAdd, Lit(1.0)),
      dataframe::CmpOp::kGt, Lit(1.7));
  for (auto _ : state) {
    auto r = EvalExpr(df, *expr);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EvalFused)->Arg(100000);

void BM_EvalUnfused(benchmark::State& state) {
  // Same computation with materialized intermediates (what operator-level
  // fusion removes).
  DataFrame df = MakeFrame(state.range(0), 1000);
  for (auto _ : state) {
    auto t1 = dataframe::BinaryOpScalar(*df.GetColumn("x").ValueOrDie(),
                                        dataframe::Scalar::Float(2.0),
                                        dataframe::BinOp::kMul);
    auto t2 = dataframe::BinaryOpScalar(*t1, dataframe::Scalar::Float(1.0),
                                        dataframe::BinOp::kAdd);
    auto r = dataframe::CompareScalar(*t2, dataframe::Scalar::Float(1.7),
                                      dataframe::CmpOp::kGt);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EvalUnfused)->Arg(100000);

void BM_QRBlock(benchmark::State& state) {
  Rng rng(3);
  tensor::NDArray a =
      tensor::NDArray::RandomNormal({state.range(0), 32}, rng);
  for (auto _ : state) {
    tensor::NDArray q, r;
    auto st = tensor::QRDecompose(a, &q, &r);
    benchmark::DoNotOptimize(st);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_QRBlock)->Arg(4096);

void BM_SerializeChunk(benchmark::State& state) {
  auto chunk = services::MakeChunk(MakeFrame(state.range(0), 1000));
  for (auto _ : state) {
    auto buf = services::SerializeChunk(*chunk);
    auto back = services::DeserializeChunk(*buf);
    benchmark::DoNotOptimize(back);
  }
  state.SetBytesProcessed(state.iterations() * chunk->nbytes());
}
BENCHMARK(BM_SerializeChunk)->Arg(50000);

void BM_ColoringFusion(benchmark::State& state) {
  // Layered DAG: w nodes per layer, each feeding the next layer.
  const int layers = 20, width = static_cast<int>(state.range(0));
  std::vector<std::vector<int>> succ(layers * width);
  for (int l = 0; l + 1 < layers; ++l) {
    for (int i = 0; i < width; ++i) {
      succ[l * width + i].push_back((l + 1) * width + i);
    }
  }
  for (auto _ : state) {
    auto colors = graph::ColorForFusion(succ);
    benchmark::DoNotOptimize(colors);
  }
  state.SetItemsProcessed(state.iterations() * layers * width);
}
BENCHMARK(BM_ColoringFusion)->Arg(64);

void BM_StoragePutGet(benchmark::State& state) {
  Config config;
  config.num_workers = 1;
  config.bands_per_worker = 2;
  config.band_memory_limit = 1LL << 30;
  Metrics metrics;
  services::StorageService store(config, &metrics);
  auto chunk = services::MakeChunk(MakeFrame(10000, 100));
  int64_t i = 0;
  for (auto _ : state) {
    std::string key = "k" + std::to_string(i++);
    benchmark::DoNotOptimize(store.Put(key, chunk, 0));
    benchmark::DoNotOptimize(store.Get(key, 1));
    benchmark::DoNotOptimize(store.Delete(key));
  }
}
BENCHMARK(BM_StoragePutGet);

void BM_TpchGen(benchmark::State& state) {
  for (auto _ : state) {
    auto t = io::tpch::Generate(0.001);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_TpchGen);

// ---------------------------------------------------------------------------
// Thread-count sweep: morsel-driven kernels at 1/2/4/8 pool threads.
//
// The container may expose a single core, so wall time cannot show the
// speedup; instead each run measures kernel CPU split into a serial share
// (band thread outside morsels) and a parallel share (all morsel CPU), and
// models time as serial + parallel/threads — exactly how the executor folds
// pool work into simulated_us. Output checksums prove the morsel
// decomposition is byte-identical at every thread count.
// ---------------------------------------------------------------------------

std::string FingerprintFrame(const DataFrame& df) {
  std::string out;
  for (int ci = 0; ci < df.num_columns(); ++ci) {
    out += df.column_name(ci);
    const Column& c = df.column(ci);
    for (int64_t i = 0; i < c.length(); ++i) {
      out += c.IsValid(i) ? 'v' : 'n';
      if (c.IsValid(i)) c.AppendKeyBytes(i, &out);
    }
  }
  return out;
}

struct SweepSample {
  int threads = 1;
  double wall_s = 0;
  int64_t serial_cpu_us = 0;
  int64_t par_cpu_us = 0;
  double modeled_us = 0;
  size_t checksum = 0;
};

/// Runs `run` under a pool of `threads` and measures the cost split the
/// executor's model uses. Three reps; keeps the lowest-modeled-time rep.
/// `fingerprint` hashes the last result outside the measured window so the
/// (serial) verification pass does not pollute the kernel's cost split.
SweepSample MeasureKernel(int threads, const std::function<void()>& run,
                          const std::function<std::string()>& fingerprint) {
  ThreadPool pool(threads);
  ThreadPool* prev = SetCurrentThreadPool(&pool);
  SweepSample best;
  best.threads = threads;
  // Untimed warmup: the first run after a frame is built pays allocator
  // growth and page-fault costs that belong to the process, not the
  // kernel; without it the first thread count measured eats them all.
  run();
  for (int rep = 0; rep < 3; ++rep) {
    SweepSample s;
    s.threads = threads;
    ParallelCpuScope scope;
    const int64_t cpu0 = ThreadCpuMicros();
    const auto t0 = std::chrono::steady_clock::now();
    run();
    const auto t1 = std::chrono::steady_clock::now();
    const int64_t band_cpu = ThreadCpuMicros() - cpu0;
    s.wall_s = std::chrono::duration<double>(t1 - t0).count();
    s.par_cpu_us = scope.total_us();
    s.serial_cpu_us = band_cpu - scope.inline_us();
    if (s.serial_cpu_us < 0) s.serial_cpu_us = 0;
    s.modeled_us = static_cast<double>(s.serial_cpu_us) +
                   static_cast<double>(s.par_cpu_us) / threads;
    s.checksum = std::hash<std::string>{}(fingerprint());
    if (rep == 0 || s.modeled_us < best.modeled_us) {
      const size_t keep = best.checksum;
      best = s;
      if (rep > 0 && keep != s.checksum) {
        std::fprintf(stderr, "checksum drift within thread count!\n");
      }
    }
  }
  SetCurrentThreadPool(prev);
  return best;
}

struct KernelSpec {
  const char* name;
  int64_t rows;
  std::function<void()> run;
  std::function<std::string()> fingerprint;
  /// Optional serial reference over plain (un-encoded) inputs; when set,
  /// the sweep also asserts every checksum matches it — dictionary
  /// encoding must be invisible in the output bytes.
  std::function<std::string()> plain_run;
};

// ---------------------------------------------------------------------------
// Buffer-sharing section: for slice / concat / shuffle-partition, build the
// derived chunks once eagerly (value data copied, the pre-CoW behaviour)
// and once through the shared-buffer paths, store base + derived chunks in
// a StorageService band, and report the band's resident bytes in each mode
// plus the wall time of the derivation itself. The gap is exactly what the
// copy-on-write payload layer saves at peak.
// ---------------------------------------------------------------------------

services::ChunkDataPtr WrapColumn(Column col) {
  return services::MakeChunk(
      DataFrame::Make({"v"}, {std::move(col)}).MoveValue());
}

int64_t PeakBandBytes(const std::vector<services::ChunkDataPtr>& chunks) {
  Config config;
  config.num_workers = 1;
  config.bands_per_worker = 1;
  config.band_memory_limit = 8LL << 30;
  Metrics metrics;
  services::StorageService store(config, &metrics);
  for (size_t i = 0; i < chunks.size(); ++i) {
    auto st = store.Put("c" + std::to_string(i), chunks[i], 0);
    if (!st.ok()) std::fprintf(stderr, "sharing bench put failed\n");
  }
  return store.band_used_bytes(0);
}

struct SharingSample {
  const char* op;
  int64_t rows = 0;
  int partitions = 0;
  int64_t peak_eager = 0;
  int64_t peak_shared = 0;
  int64_t bytes_shared = 0;  // BufferStats delta during the shared build
  double wall_us_eager = 0;
  double wall_us_shared = 0;
};

/// Times `build(share)` and stores its chunks; `share` selects the view
/// path vs. the eager-copy path over an identical fresh base column.
SharingSample MeasureSharing(
    const char* op, int64_t rows, int partitions,
    const std::function<std::vector<services::ChunkDataPtr>(bool)>& build) {
  SharingSample s;
  s.op = op;
  s.rows = rows;
  s.partitions = partitions;
  for (bool share : {false, true}) {
    const int64_t shared0 =
        common::BufferStats::Get().bytes_shared.load();
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<services::ChunkDataPtr> chunks = build(share);
    const auto t1 = std::chrono::steady_clock::now();
    const double us =
        std::chrono::duration<double, std::micro>(t1 - t0).count();
    const int64_t peak = PeakBandBytes(chunks);
    if (share) {
      s.wall_us_shared = us;
      s.peak_shared = peak;
      s.bytes_shared =
          common::BufferStats::Get().bytes_shared.load() - shared0;
    } else {
      s.wall_us_eager = us;
      s.peak_eager = peak;
    }
  }
  return s;
}

void WriteSharingJson(FILE* f) {
  const int64_t n = 1 << 20;  // 8 MiB of int64 payload per base column
  const int parts = 8;
  std::vector<int64_t> values(n);
  for (int64_t i = 0; i < n; ++i) values[i] = i * 3 + 1;

  const auto slice_build = [&](bool share) {
    Column base = Column::Int64(values);
    std::vector<services::ChunkDataPtr> out;
    for (int p = 0; p < parts; ++p) {
      const int64_t lo = p * (n / parts);
      Column piece =
          share ? base.Slice(lo, n / parts)
                : Column::Int64(std::vector<int64_t>(
                      values.begin() + lo, values.begin() + lo + n / parts));
      out.push_back(WrapColumn(std::move(piece)));
    }
    out.push_back(WrapColumn(std::move(base)));
    return out;
  };

  const auto concat_build = [&](bool share) {
    Column base = Column::Int64(values);
    Column left = share ? base.Slice(0, n / 2)
                        : Column::Int64(std::vector<int64_t>(
                              values.begin(), values.begin() + n / 2));
    Column right = share ? base.Slice(n / 2, n / 2)
                         : Column::Int64(std::vector<int64_t>(
                               values.begin() + n / 2, values.end()));
    Column joined = Column::Concat({&left, &right}).ValueOrDie();
    std::vector<services::ChunkDataPtr> out;
    out.push_back(WrapColumn(std::move(base)));
    out.push_back(WrapColumn(std::move(joined)));
    return out;
  };

  // Range-partition shuffle: each mapper output is a contiguous index run
  // of the sorted input, the shape `Take` turns into an O(1) window.
  const auto shuffle_build = [&](bool share) {
    Column base = Column::Int64(values);
    std::vector<services::ChunkDataPtr> out;
    for (int p = 0; p < parts; ++p) {
      const int64_t lo = p * (n / parts);
      Column piece;
      if (share) {
        std::vector<int64_t> idx(n / parts);
        for (int64_t i = 0; i < n / parts; ++i) idx[i] = lo + i;
        piece = base.Take(idx);
      } else {
        piece = Column::Int64(std::vector<int64_t>(
            values.begin() + lo, values.begin() + lo + n / parts));
      }
      out.push_back(WrapColumn(std::move(piece)));
    }
    out.push_back(WrapColumn(std::move(base)));
    return out;
  };

  const SharingSample samples[] = {
      MeasureSharing("slice", n, parts, slice_build),
      MeasureSharing("concat", n, 2, concat_build),
      MeasureSharing("shuffle_partition", n, parts, shuffle_build),
  };

  std::fprintf(f, "  \"sharing\": [\n");
  for (size_t i = 0; i < std::size(samples); ++i) {
    const SharingSample& s = samples[i];
    const double ratio =
        s.peak_eager > 0
            ? static_cast<double>(s.peak_shared) / s.peak_eager
            : 0.0;
    std::fprintf(f,
                 "    {\"op\": \"%s\", \"rows\": %" PRId64
                 ", \"partitions\": %d, \"peak_band_bytes_eager\": %" PRId64
                 ", \"peak_band_bytes_shared\": %" PRId64
                 ", \"shared_over_eager\": %.3f, \"bytes_shared\": %" PRId64
                 ", \"wall_us_eager\": %.1f, \"wall_us_shared\": %.1f}%s\n",
                 s.op, s.rows, s.partitions, s.peak_eager, s.peak_shared,
                 ratio, s.bytes_shared, s.wall_us_eager, s.wall_us_shared,
                 i + 1 < std::size(samples) ? "," : "");
    std::printf("sharing %s: peak %" PRId64 " -> %" PRId64
                " bytes (%.2fx), derive %.0fus -> %.0fus\n",
                s.op, s.peak_eager, s.peak_shared, ratio, s.wall_us_eager,
                s.wall_us_shared);
  }
  std::fprintf(f, "  ],\n");
}

// ---------------------------------------------------------------------------
// Optimizer section: a TPC-H Q4-shaped pipeline (orders narrowly filtered
// by a date range over date-clustered chunks, aggregated per priority from
// two identical reads, merged) run under three pipeline specs. The deltas
// isolate what each new pass buys: CSE collapses the duplicate source scan
// (fewer executed subtasks), predicate pushdown turns the date filter into
// two-phase reads that skip payload columns of all-miss chunks (fewer
// source bytes read). Results are byte-identical across modes.
// ---------------------------------------------------------------------------

struct OptimizerSample {
  const char* mode;
  int64_t subtasks = 0;
  int64_t source_bytes = 0;
  int64_t cse_hits = 0;
  int64_t predicates_pushed = 0;
  std::string checksum;
};

void WriteOptimizerJson(FILE* f) {
  const int64_t n = 40000;
  const std::string path = "/tmp/xorbits_bench_optimizer.xpq";
  std::vector<int64_t> key(n), date(n), prio(n);
  std::vector<double> price(n);
  Rng rng(29);
  for (int64_t i = 0; i < n; ++i) {
    key[i] = i;
    // Dates ascend with the row id, as in a freshly loaded orders table:
    // a narrow range predicate misses every chunk but the last few.
    date[i] = 8000 + i / 20;
    prio[i] = rng.UniformInt(1, 5);
    price[i] = 1000.0 + rng.Uniform() * 99000.0;
  }
  DataFrame orders =
      DataFrame::Make({"o_orderkey", "o_orderdate", "o_priority",
                       "o_totalprice"},
                      {Column::Int64(key), Column::Int64(date),
                       Column::Int64(prio), Column::Float64(price)})
          .MoveValue();
  if (!io::WriteXpq(path, orders).ok()) {
    std::fprintf(stderr, "optimizer bench: cannot write %s\n", path.c_str());
    return;
  }

  using dataframe::CmpOp;
  using operators::Col;
  using operators::Lit;
  const auto in_window = [] {
    return operators::AndExpr(
        operators::CompareExpr(Col("o_orderdate"), CmpOp::kGe,
                               Lit(int64_t{9900})),
        operators::CompareExpr(Col("o_orderdate"), CmpOp::kLt,
                               Lit(int64_t{9950})));
  };
  const auto run = [&](const char* mode, Config cfg) {
    cfg.default_chunk_rows = 4096;
    // This section compares eager-path source I/O across pass specs;
    // under late materialization payload reads defer to decode time and
    // `source_bytes_read` stays 0 (the selectivity section covers the
    // late path with `bytes_materialized`).
    cfg.late_materialization = false;
    core::Session session(std::move(cfg));
    // Two branches hand-written against separate reads of the same table —
    // the duplicate scan CSE exists to collapse. Both prune to the same
    // columns so the chunk-level reads are semantically identical.
    auto build = [&](dataframe::AggFunc fn, const char* out) {
      auto r = ReadParquet(&session, path);
      auto fil = r->Filter(in_window());
      return fil->GroupByAgg({"o_priority"}, {{"o_totalprice", fn, out}});
    };
    auto g1 = build(AggFunc::kSum, "revenue");
    auto g2 = build(AggFunc::kMax, "top_order");
    dataframe::MergeOptions on;
    on.on = {"o_priority"};
    auto joined = g1->Merge(*g2, on);
    auto sorted = joined->SortValues({"o_priority"});
    DataFrame out = sorted->Fetch().ValueOrDie();
    OptimizerSample s;
    s.mode = mode;
    s.subtasks = session.metrics().subtasks_executed.load();
    s.source_bytes = session.metrics().source_bytes_read.load();
    s.cse_hits = session.metrics().cse_hits.load();
    s.predicates_pushed = session.metrics().predicates_pushed.load();
    s.checksum = FingerprintFrame(out);
    return s;
  };

  Config full;
  Config no_cse;
  no_cse.optimizer.chunk = {optimizer::kPassOpFusion};
  Config no_pushdown;
  no_pushdown.optimizer.tileable = {optimizer::kPassColumnPruning,
                                    optimizer::kPassDeadNodeElim};
  const OptimizerSample samples[] = {
      run("full", std::move(full)),
      run("no_cse", std::move(no_cse)),
      run("no_pushdown", std::move(no_pushdown)),
  };

  std::fprintf(f, "  \"optimizer\": [\n");
  for (size_t i = 0; i < std::size(samples); ++i) {
    const OptimizerSample& s = samples[i];
    std::fprintf(f,
                 "    {\"mode\": \"%s\", \"subtasks_executed\": %" PRId64
                 ", \"source_bytes_read\": %" PRId64
                 ", \"cse_hits\": %" PRId64
                 ", \"predicates_pushed\": %" PRId64
                 ", \"identical_output\": %s}%s\n",
                 s.mode, s.subtasks, s.source_bytes, s.cse_hits,
                 s.predicates_pushed,
                 s.checksum == samples[0].checksum ? "true" : "false",
                 i + 1 < std::size(samples) ? "," : "");
    std::printf("optimizer %-12s subtasks=%" PRId64 " source_bytes=%" PRId64
                " cse_hits=%" PRId64 " pushed=%" PRId64 "\n",
                s.mode, s.subtasks, s.source_bytes, s.cse_hits,
                s.predicates_pushed);
  }
  std::fprintf(f, "  ]\n");
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Selectivity sweep (DESIGN.md §10): the same scan+filter run eagerly
// (decode everything, compact at the filter) and late (lazy column thunks +
// selection vector, forced only by the final consumer), at selectivities
// from 0.1% to 100%. `bytes_materialized` deltas around each run show what
// late materialization skips: at 1% the late path should turn fewer than a
// quarter of the eager bytes dense (predicate column + selected rows vs.
// every column plus the compacted output). Outputs must be byte-identical.
// ---------------------------------------------------------------------------

struct SelectivitySample {
  double selectivity = 0;
  int64_t rows_kept = 0;
  int64_t eager_bytes = 0;
  int64_t late_bytes = 0;
  int64_t lazy_decodes = 0;
  bool identical = false;
};

/// One dataset: file at `path`, predicate `pred_col < max_value * s`.
/// Appends a JSON object for the dataset; returns false when any output
/// differs or the 1%-selectivity byte gate fails.
bool SweepSelectivity(FILE* f, const char* dataset, const std::string& path,
                      const std::string& pred_col, int64_t pred_max,
                      bool last) {
  using dataframe::CmpOp;
  auto& ls = common::LateStats::Get();
  const double selectivities[] = {0.001, 0.01, 0.1, 0.5, 1.0};
  std::vector<SelectivitySample> samples;
  bool ok = true;
  for (double sel : selectivities) {
    const int64_t threshold =
        sel >= 1.0 ? pred_max + 1
                   : static_cast<int64_t>(static_cast<double>(pred_max) * sel);
    const auto pred = operators::CompareExpr(
        operators::Col(pred_col), CmpOp::kLt, operators::Lit(threshold));

    SelectivitySample s;
    s.selectivity = sel;

    // Eager: decode every column at scan time, compact at the filter.
    const int64_t e0 = ls.bytes_materialized.load();
    DataFrame eager_df = io::ReadXpq(path).ValueOrDie();
    Column eager_mask = operators::EvalExpr(eager_df, *pred).ValueOrDie();
    DataFrame eager_out = dataframe::Filter(eager_df, eager_mask).ValueOrDie();
    s.eager_bytes = ls.bytes_materialized.load() - e0;

    // Late: footer-only read, predicate column decodes to build the mask,
    // everything else resolves through the selection when the consumer
    // (the fingerprint, standing in for fetch/serialize) reads it.
    const int64_t l0 = ls.bytes_materialized.load();
    const int64_t d0 = ls.lazy_columns_decoded.load();
    DataFrame late_df = io::ReadXpqLazy(path).ValueOrDie();
    Column late_mask = operators::EvalExpr(late_df, *pred).ValueOrDie();
    DataFrame late_out = dataframe::FilterLate(late_df, late_mask).ValueOrDie();
    const std::string late_fp = FingerprintFrame(late_out);
    s.late_bytes = ls.bytes_materialized.load() - l0;
    s.lazy_decodes = ls.lazy_columns_decoded.load() - d0;

    s.rows_kept = eager_out.num_rows();
    s.identical = late_fp == FingerprintFrame(eager_out);
    if (!s.identical) {
      std::fprintf(stderr, "selectivity %s@%.3f: eager/late outputs differ!\n",
                   dataset, sel);
      ok = false;
    }
    if (sel == 0.01 && s.late_bytes > s.eager_bytes / 4) {
      std::fprintf(stderr,
                   "selectivity %s@0.01: late bytes %" PRId64
                   " exceed 0.25x of eager %" PRId64 "\n",
                   dataset, s.late_bytes, s.eager_bytes);
      ok = false;
    }
    samples.push_back(s);
  }

  std::fprintf(f, "    {\"dataset\": \"%s\", \"sweep\": [\n", dataset);
  for (size_t i = 0; i < samples.size(); ++i) {
    const SelectivitySample& s = samples[i];
    const double ratio =
        s.eager_bytes > 0
            ? static_cast<double>(s.late_bytes) / s.eager_bytes
            : 0.0;
    std::fprintf(f,
                 "      {\"selectivity\": %.3f, \"rows_kept\": %" PRId64
                 ", \"bytes_materialized_eager\": %" PRId64
                 ", \"bytes_materialized_late\": %" PRId64
                 ", \"late_over_eager\": %.3f, \"lazy_columns_decoded\": "
                 "%" PRId64 ", \"identical_output\": %s}%s\n",
                 s.selectivity, s.rows_kept, s.eager_bytes, s.late_bytes,
                 ratio, s.lazy_decodes, s.identical ? "true" : "false",
                 i + 1 < samples.size() ? "," : "");
    std::printf("selectivity %-14s s=%.3f eager=%" PRId64 " late=%" PRId64
                " (%.3fx) identical=%s\n",
                dataset, s.selectivity, s.eager_bytes, s.late_bytes, ratio,
                s.identical ? "yes" : "NO");
  }
  std::fprintf(f, "    ]}%s\n", last ? "" : ",");
  return ok;
}

/// Census-shaped table: ten mixed-dtype columns with a uniform 0..n-1 id
/// the sweep predicates on (exact selectivities).
DataFrame MakeCensusFrame(int64_t n) {
  Rng rng(23);
  std::vector<int64_t> id(n), age(n), edu(n), marital(n), occ(n);
  std::vector<double> income(n), hours(n), weight(n);
  std::vector<std::string> name(n), city(n);
  for (int64_t i = 0; i < n; ++i) {
    id[i] = i;
    age[i] = rng.UniformInt(16, 95);
    edu[i] = rng.UniformInt(0, 16);
    marital[i] = rng.UniformInt(0, 6);
    occ[i] = rng.UniformInt(0, 500);
    income[i] = rng.Uniform() * 200000.0;
    hours[i] = 10.0 + rng.Uniform() * 60.0;
    weight[i] = rng.Uniform();
    name[i] = "person_" + std::to_string(rng.UniformInt(0, 99999));
    city[i] = "city_" + std::to_string(rng.UniformInt(0, 499));
  }
  return DataFrame::Make(
             {"id", "age", "edu", "marital", "occ", "income", "hours",
              "weight", "name", "city"},
             {Column::Int64(id), Column::Int64(age), Column::Int64(edu),
              Column::Int64(marital), Column::Int64(occ),
              Column::Float64(income), Column::Float64(hours),
              Column::Float64(weight), Column::String(name),
              Column::String(city)})
      .MoveValue();
}

/// Writes the `selectivity` JSON section (census + TPC-H lineitem files in
/// /tmp); returns false when any gate fails.
bool WriteSelectivityJson(FILE* f, int64_t rows) {
  std::fprintf(f, "  \"selectivity\": [\n");
  bool ok = true;

  const std::string census_path = "/tmp/xorbits_bench_census.xpq";
  DataFrame census = MakeCensusFrame(rows);
  if (io::WriteXpq(census_path, census).ok()) {
    ok = SweepSelectivity(f, "census", census_path, "id", rows,
                          /*last=*/false) &&
         ok;
    std::remove(census_path.c_str());
  } else {
    std::fprintf(stderr, "selectivity bench: cannot write census file\n");
    ok = false;
  }

  const std::string tpch_path = "/tmp/xorbits_bench_lineitem.xpq";
  const double scale = rows >= 100000 ? 0.01 : 0.002;
  auto tables = io::tpch::Generate(scale);
  if (tables.ok()) {
    const DataFrame& lineitem = tables->lineitem;
    int64_t max_key = 0;
    const Column& okey = *lineitem.GetColumn("l_orderkey").ValueOrDie();
    for (int64_t i = 0; i < okey.length(); ++i) {
      max_key = std::max(max_key, okey.int64_data()[i]);
    }
    if (io::WriteXpq(tpch_path, lineitem).ok()) {
      ok = SweepSelectivity(f, "tpch_lineitem", tpch_path, "l_orderkey",
                            max_key, /*last=*/true) &&
           ok;
      std::remove(tpch_path.c_str());
    } else {
      std::fprintf(stderr, "selectivity bench: cannot write lineitem file\n");
      ok = false;
    }
  } else {
    std::fprintf(stderr, "selectivity bench: tpch generation failed\n");
    ok = false;
  }
  std::fprintf(f, "  ],\n");
  return ok;
}

// ---------------------------------------------------------------------------
// Pipelined block exchange (DESIGN.md §11): OOM frontier at a fixed band
// budget, wire-vs-memory compression on dict-encoded TPC-H lineitem keys,
// and eager-vs-pipelined checksum identity.
// ---------------------------------------------------------------------------

/// TPC-H lineitem key columns — int64 l_orderkey plus the dict-encoded
/// l_returnflag / l_linestatus flags — the frame the CI compression gate is
/// defined on (the int64 key ships full-width; the codes pack to 1 byte).
DataFrame LineitemKeyFrame(int64_t rows) {
  const double scale = static_cast<double>(rows) / (1500000.0 * 4.0) * 1.1;
  auto tables = io::tpch::Generate(std::max(scale, 0.001));
  if (!tables.ok()) return DataFrame();
  DataFrame li = tables->lineitem.SliceRows(
      0, std::min(rows, tables->lineitem.num_rows()));
  DataFrame out;
  (void)out.SetColumn("l_orderkey",
                      *li.GetColumn("l_orderkey").ValueOrDie());
  (void)out.SetColumn("l_returnflag",
                      li.GetColumn("l_returnflag").ValueOrDie()->DictEncode());
  (void)out.SetColumn("l_linestatus",
                      li.GetColumn("l_linestatus").ValueOrDie()->DictEncode());
  return out;
}

struct ShuffleProbe {
  bool completed = false;
  bool oom = false;       // failed with the OOM class (the frontier signal)
  double wall_s = 0;
  int64_t wire = 0;       // serialized bytes pushed through the exchange
  int64_t mem = 0;        // logical bytes of the same blocks
  int64_t spilled = 0;    // blocks pushed to disk by flow control
  size_t checksum = 0;
};

/// One full shuffle (global sort of the key frame) on a session whose band
/// budget is fixed at `band_budget`. Eager mode holds every whole shuffle
/// partition resident; pipelined mode streams blocks and may spill them.
ShuffleProbe RunShuffleProbe(const DataFrame& keys, int64_t rows,
                             int64_t band_budget, bool pipelined) {
  Config c;
  c.num_workers = 2;
  c.bands_per_worker = 2;
  c.cpus_per_band = 2;
  c.band_memory_limit = band_budget;
  c.chunk_store_limit = 128LL << 10;
  c.shuffle_block_bytes = 32 << 10;
  c.pipelined_shuffle = pipelined;
  c.task_deadline_ms = 120000;

  auto& stats = common::ExchangeStats::Get();
  const int64_t w0 = stats.shuffle_wire_bytes.load();
  const int64_t m0 = stats.shuffle_memory_bytes.load();
  const int64_t s0 = stats.shuffle_blocks_spilled.load();

  // Materialize a tight copy of the head `rows`: a zero-copy slice would
  // keep the full generated buffers alive and be charged at their whole
  // size, OOMing every probe regardless of `rows`.
  DataFrame head;
  {
    auto enc = services::SerializeChunk(
        *services::MakeChunk(keys.SliceRows(0, rows)));
    if (!enc.ok()) return ShuffleProbe{};
    auto dec = services::DeserializeChunk(*enc);
    if (!dec.ok()) return ShuffleProbe{};
    head = (*dec)->dataframe();
  }

  ShuffleProbe p;
  const auto t0 = std::chrono::steady_clock::now();
  Status st;
  {
    core::Session session(c);
    auto df = FromPandas(&session, head);
    if (df.ok()) {
      auto sorted = df->SortValues({"l_returnflag", "l_orderkey"});
      if (sorted.ok()) {
        auto out = sorted->Fetch();
        if (out.ok()) {
          p.completed = true;
          p.checksum = std::hash<std::string>{}(FingerprintFrame(*out));
        } else {
          st = out.status();
        }
      } else {
        st = sorted.status();
      }
    } else {
      st = df.status();
    }
  }
  p.oom = !p.completed && st.IsOutOfMemory();
  if (!p.completed && !p.oom) {
    std::fprintf(stderr, "shuffle probe rows=%" PRId64 " %s failed: %s\n",
                 rows, pipelined ? "pipelined" : "eager",
                 st.ToString().c_str());
  } else if (p.oom && std::getenv("XORBITS_SHUFFLE_DEBUG") != nullptr) {
    std::fprintf(stderr, "shuffle probe rows=%" PRId64 " %s OOM: %s\n", rows,
                 pipelined ? "pipelined" : "eager", st.ToString().c_str());
  }
  p.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           t0)
                 .count();
  p.wire = stats.shuffle_wire_bytes.load() - w0;
  p.mem = stats.shuffle_memory_bytes.load() - m0;
  p.spilled = stats.shuffle_blocks_spilled.load() - s0;
  return p;
}

/// Writes the `shuffle` JSON section: an SF sweep at a fixed band budget in
/// eager and pipelined mode. Gates (returned as `ok`): identical checksums
/// wherever both modes complete, and wire <= 0.7x memory on the dict-keyed
/// frame. The full bench additionally records how far the pipelined OOM
/// frontier sits beyond the eager one.
bool WriteShuffleJson(FILE* f, int64_t base_rows, int64_t band_budget,
                      bool require_frontier_shift) {
  const std::vector<int64_t> sf = {1, 2, 3, 4, 6, 8};
  DataFrame keys = LineitemKeyFrame(base_rows * sf.back());
  if (keys.num_rows() < base_rows) {
    std::fprintf(stderr, "shuffle bench: lineitem generation failed\n");
    return false;
  }
  bool identical = true;
  bool wire_gate = true;
  int64_t eager_frontier = 0, pipelined_frontier = 0;
  std::fprintf(f, "  \"shuffle\": {\n");
  std::fprintf(f,
               "    \"note\": \"global sort of dict-encoded lineitem keys; "
               "fixed band budget %" PRId64
               " bytes; frontier = largest row count that completes without "
               "OOM\",\n",
               band_budget);
  std::fprintf(f, "    \"sweep\": [\n");
  for (size_t i = 0; i < sf.size(); ++i) {
    const int64_t rows = std::min(base_rows * sf[i], keys.num_rows());
    ShuffleProbe eager =
        RunShuffleProbe(keys, rows, band_budget, /*pipelined=*/false);
    ShuffleProbe piped =
        RunShuffleProbe(keys, rows, band_budget, /*pipelined=*/true);
    if (eager.completed) eager_frontier = sf[i];
    if (piped.completed) pipelined_frontier = sf[i];
    if (eager.completed && piped.completed &&
        eager.checksum != piped.checksum) {
      std::fprintf(stderr,
                   "shuffle bench: eager/pipelined checksum mismatch at "
                   "rows=%" PRId64 "!\n",
                   rows);
      identical = false;
    }
    if (piped.completed && piped.mem > 0 &&
        piped.wire > (piped.mem * 7) / 10) {
      std::fprintf(stderr,
                   "shuffle bench: wire %" PRId64 " > 0.7x memory %" PRId64
                   " at rows=%" PRId64 "!\n",
                   piped.wire, piped.mem, rows);
      wire_gate = false;
    }
    std::fprintf(
        f,
        "      {\"sf\": %" PRId64 ", \"rows\": %" PRId64
        ", \"eager\": {\"completed\": %s, \"oom\": %s, \"wall_s\": %.3f}, "
        "\"pipelined\": {\"completed\": %s, \"oom\": %s, \"wall_s\": %.3f, "
        "\"shuffle_wire_bytes\": %" PRId64 ", \"shuffle_memory_bytes\": %" PRId64
        ", \"wire_ratio\": %.3f, \"blocks_spilled\": %" PRId64
        "}, \"identical\": %s}%s\n",
        sf[i], rows, eager.completed ? "true" : "false",
        eager.oom ? "true" : "false", eager.wall_s,
        piped.completed ? "true" : "false", piped.oom ? "true" : "false",
        piped.wall_s, piped.wire, piped.mem,
        piped.mem > 0 ? static_cast<double>(piped.wire) /
                            static_cast<double>(piped.mem)
                      : 0.0,
        piped.spilled,
        (!eager.completed || !piped.completed ||
         eager.checksum == piped.checksum)
            ? "true"
            : "false",
        i + 1 < sf.size() ? "," : "");
    std::printf("shuffle sf=%" PRId64 " eager=%s pipelined=%s spilled=%" PRId64
                "\n",
                sf[i], eager.completed ? "ok" : (eager.oom ? "OOM" : "fail"),
                piped.completed ? "ok" : (piped.oom ? "OOM" : "fail"),
                piped.spilled);
  }
  const bool frontier_moved = pipelined_frontier > eager_frontier;
  std::fprintf(f, "    ],\n");
  std::fprintf(f,
               "    \"eager_oom_frontier_sf\": %" PRId64
               ", \"pipelined_oom_frontier_sf\": %" PRId64
               ", \"frontier_moved\": %s, \"identical_outputs\": %s, "
               "\"wire_gate_0p7\": %s\n  },\n",
               eager_frontier, pipelined_frontier,
               frontier_moved ? "true" : "false",
               identical ? "true" : "false", wire_gate ? "true" : "false");
  bool ok = identical && wire_gate;
  if (require_frontier_shift && !frontier_moved) {
    std::fprintf(stderr,
                 "shuffle bench: pipelined OOM frontier (%" PRId64
                 ") did not move past eager (%" PRId64 ")\n",
                 pipelined_frontier, eager_frontier);
    ok = false;
  }
  return ok;
}

/// Returns true when every kernel produced byte-identical checksums at all
/// thread counts and (for the string-keyed kernels) across encodings.
bool WriteKernelSweepJson(const char* path, int64_t kRows) {
  DataFrame gb_df = MakeFrame(kRows, 500);
  DataFrame join_left = MakeFrame(kRows, 2000);
  DataFrame join_right = MakeFrame(2000, 2000);
  DataFrame sort_df = MakeFrame(kRows, 10000);
  // String-keyed workloads for the dictionary paths. The join right side is
  // large enough (> the 16k radix threshold) that the build partitions.
  const int64_t kJoinBuildRows = std::max<int64_t>(kRows / 8, 20000);
  DataFrame sgb_enc = MakeStringFrame(kRows, 500, /*encoded=*/true);
  DataFrame sgb_plain = MakeStringFrame(kRows, 500, /*encoded=*/false);
  DataFrame sj_left_enc = MakeStringFrame(kRows, 40000, /*encoded=*/true);
  DataFrame sj_left_plain = MakeStringFrame(kRows, 40000, /*encoded=*/false);
  DataFrame sj_right_enc =
      MakeStringFrame(kJoinBuildRows, 40000, /*encoded=*/true);
  DataFrame sj_right_plain =
      MakeStringFrame(kJoinBuildRows, 40000, /*encoded=*/false);
  Rng rng(13);
  tensor::NDArray mm_a = tensor::NDArray::RandomNormal({288, 288}, rng);
  tensor::NDArray mm_b = tensor::NDArray::RandomNormal({288, 288}, rng);

  dataframe::MergeOptions join_opts;
  join_opts.on = {"k"};

  auto df_out = std::make_shared<DataFrame>();
  auto mm_out = std::make_shared<tensor::NDArray>();
  const auto df_fingerprint = [df_out] { return FingerprintFrame(*df_out); };

  const KernelSpec kernels[] = {
      {"groupby", kRows,
       [&, df_out] {
         *df_out = dataframe::GroupByAgg(gb_df, {"k"},
                                         {{"v", AggFunc::kSum, "s"},
                                          {"x", AggFunc::kMean, "m"},
                                          {"x", AggFunc::kVar, "var"}})
                       .ValueOrDie();
       },
       df_fingerprint},
      {"join", kRows,
       [&, df_out] {
         *df_out =
             dataframe::Merge(join_left, join_right, join_opts).ValueOrDie();
       },
       df_fingerprint},
      {"sort", kRows,
       [&, df_out] {
         *df_out = dataframe::SortValues(sort_df, {"k", "v"}).ValueOrDie();
       },
       df_fingerprint},
      {"matmul", 288 * 288,
       [&, mm_out] { *mm_out = tensor::MatMul(mm_a, mm_b).ValueOrDie(); },
       [mm_out] {
         return std::string(
             reinterpret_cast<const char*>(mm_out->data().data()),
             mm_out->data().size() * sizeof(double));
       }},
      {"dict_groupby", kRows,
       [&, df_out] {
         *df_out = dataframe::GroupByAgg(sgb_enc, {"k"},
                                         {{"v", AggFunc::kSum, "s"},
                                          {"x", AggFunc::kMean, "m"},
                                          {"x", AggFunc::kVar, "var"}})
                       .ValueOrDie();
       },
       df_fingerprint,
       [&] {
         return FingerprintFrame(
             dataframe::GroupByAgg(sgb_plain, {"k"},
                                   {{"v", AggFunc::kSum, "s"},
                                    {"x", AggFunc::kMean, "m"},
                                    {"x", AggFunc::kVar, "var"}})
                 .ValueOrDie());
       }},
      {"radix_join", kRows,
       [&, df_out] {
         *df_out = dataframe::Merge(sj_left_enc, sj_right_enc, join_opts)
                       .ValueOrDie();
       },
       df_fingerprint,
       [&] {
         return FingerprintFrame(
             dataframe::Merge(sj_left_plain, sj_right_plain, join_opts)
                 .ValueOrDie());
       }},
  };

  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": \"kernel_thread_sweep\",\n");
  std::fprintf(f,
               "  \"note\": \"modeled_us = serial_cpu + par_cpu/threads; "
               "the executor applies the same division to simulated_us\",\n");
  std::fprintf(f, "  \"kernels\": [\n");
  bool first_kernel = true;
  bool all_identical = true;
  for (const KernelSpec& k : kernels) {
    std::printf("sweep %s ...\n", k.name);
    std::vector<SweepSample> sweep;
    for (int threads : {1, 2, 4, 8}) {
      sweep.push_back(MeasureKernel(threads, k.run, k.fingerprint));
    }
    const double base = sweep.front().modeled_us;
    bool identical = true;
    for (const SweepSample& s : sweep) {
      identical = identical && s.checksum == sweep.front().checksum;
    }
    bool matches_plain = true;
    if (k.plain_run) {
      ThreadPool* prev = SetCurrentThreadPool(nullptr);  // serial reference
      matches_plain =
          std::hash<std::string>{}(k.plain_run()) == sweep.front().checksum;
      SetCurrentThreadPool(prev);
      if (!matches_plain) {
        std::fprintf(stderr, "%s: encoded/plain checksum mismatch!\n",
                     k.name);
      }
    }
    all_identical = all_identical && identical && matches_plain;
    if (!first_kernel) std::fprintf(f, ",\n");
    first_kernel = false;
    std::fprintf(f,
                 "    {\"kernel\": \"%s\", \"rows\": %" PRId64
                 ", \"identical_outputs\": %s, \"matches_plain\": %s"
                 ", \"sweep\": [\n",
                 k.name, k.rows, identical ? "true" : "false",
                 matches_plain ? "true" : "false");
    for (size_t i = 0; i < sweep.size(); ++i) {
      const SweepSample& s = sweep[i];
      const double speedup = s.modeled_us > 0 ? base / s.modeled_us : 0.0;
      std::fprintf(f,
                   "      {\"threads\": %d, \"wall_s\": %.6f, "
                   "\"serial_cpu_us\": %" PRId64 ", \"par_cpu_us\": %" PRId64
                   ", \"modeled_us\": %.1f, \"modeled_speedup\": %.2f, "
                   "\"rows_per_modeled_s\": %.0f, \"checksum\": \"%zx\"}%s\n",
                   s.threads, s.wall_s, s.serial_cpu_us, s.par_cpu_us,
                   s.modeled_us, speedup,
                   s.modeled_us > 0 ? 1e6 * static_cast<double>(k.rows) /
                                          s.modeled_us
                                    : 0.0,
                   s.checksum, i + 1 < sweep.size() ? "," : "");
      std::printf(
          "  threads=%d modeled=%.1fus speedup=%.2fx identical=%s\n",
          s.threads, s.modeled_us, speedup,
          s.checksum == sweep.front().checksum ? "yes" : "NO");
    }
    std::fprintf(f, "    ]}");
  }
  std::fprintf(f, "\n  ],\n");
  WriteSharingJson(f);
  all_identical = WriteSelectivityJson(f, kRows) && all_identical;
  // Shuffle frontier sweep: base 8k rows per SF step, 1 MiB band budget —
  // sized so the eager plan falls over one SF step before the pipelined one.
  all_identical = WriteShuffleJson(f, std::min<int64_t>(kRows / 2, 8000),
                                   1LL << 20,
                                   /*require_frontier_shift=*/true) &&
                  all_identical;
  WriteOptimizerJson(f);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
  return all_identical;
}

}  // namespace

int main(int argc, char** argv) {
  // Consume --trace-out and --smoke before google-benchmark sees (and
  // rejects) them.
  xorbits::bench::InitTrace(argc, argv);
  bool smoke = false;
  bool smoke_selectivity = false;
  bool smoke_shuffle = false;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") {
      smoke = true;
    } else if (std::string(argv[i]) == "--smoke-selectivity") {
      smoke_selectivity = true;
    } else if (std::string(argv[i]) == "--smoke-shuffle") {
      smoke_shuffle = true;
    } else if (std::string(argv[i]).rfind("--trace-out=", 0) != 0) {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  if (smoke_shuffle) {
    // CI gate for the pipelined exchange alone: a short SF sweep that
    // fails when eager and pipelined checksums ever differ or when the
    // serialized wire bytes exceed 0.7x the logical bytes on the
    // dict-encoded lineitem key frame. The OOM-frontier shift is recorded
    // but only enforced by the full (non-smoke) run.
    FILE* f = std::fopen("/tmp/bench_smoke_shuffle.json", "w");
    if (f == nullptr) return 1;
    std::fprintf(f, "{\n");
    const bool ok = WriteShuffleJson(f, 8000, 1LL << 20,
                                     /*require_frontier_shift=*/false);
    std::fprintf(f, "  \"bench\": \"shuffle_smoke\"\n}\n");
    std::fclose(f);
    std::printf("shuffle smoke: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
  }
  if (smoke_selectivity) {
    // CI gate for late materialization alone: run just the selectivity
    // sweep at small row counts and fail when any eager/late output pair
    // differs or the 1% sweep point materializes more than a quarter of
    // the eager bytes.
    FILE* f = std::fopen("/tmp/bench_smoke_selectivity.json", "w");
    if (f == nullptr) return 1;
    std::fprintf(f, "{\n");
    const bool ok = WriteSelectivityJson(f, 40000);
    std::fprintf(f, "  \"bench\": \"selectivity_smoke\"\n}\n");
    std::fclose(f);
    std::printf("selectivity smoke: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
  }
  if (smoke) {
    // CI gate: small rows, sweep every kernel, and fail the process when
    // any checksum differs across thread counts or between the
    // dictionary-encoded and plain runs of the string-keyed kernels.
    const bool ok = WriteKernelSweepJson("/tmp/bench_smoke.json", 40000);
    std::printf("bench smoke: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
  }
  WriteKernelSweepJson("BENCH_kernels.json", 400000);
  // The kernel sweep itself runs no sessions; when tracing was requested,
  // run one small traced pipeline so the exported trace has content.
  if (xorbits::bench::BenchTrace::Get().tracer) {
    xorbits::bench::TimedRun(
        xorbits::bench::BenchConfig(EngineKind::kXorbits, /*workers=*/2,
                                    /*bands_per_worker=*/2, /*band_mb=*/64,
                                    /*chunk_kb=*/256, /*deadline_ms=*/60000),
        [](core::Session* session) {
          return workloads::pipelines::Census(session, /*rows=*/50000)
              .status();
        });
  }
  char arg0_default[] = "benchmark";
  char* args_default = arg0_default;
  if (!argv) {
    argc = 1;
    argv = &args_default;
  }
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  xorbits::bench::FinishTrace();
  return 0;
}
