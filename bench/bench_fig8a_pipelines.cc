// Reproduces Fig. 8(a): end-to-end data-science pipelines — the TPCx-AI
// UC10 skewed merge, a census-shaped preprocessing job, and a
// PLAsTiCC-shaped feature-engineering job — per engine. Reported time is
// modeled cluster time (schedule makespan; see Metrics::simulated_us):
// on the paper's testbed the skewed merge leaves static engines running on
// one core, which shows up here as a makespan concentrated on one band.

#include <cstdio>
#include <map>
#include <string>

#include "bench_util.h"
#include "workloads/pipelines.h"

namespace xorbits::bench {
namespace {

void Run() {
  PrintEngineTable();
  PrintHeader("Workloads (Table III analogue)");
  std::printf("uc10:     300k skewed transactions x 1k customers "
              "(zipf 1.6) -> merge + fraud features\n");
  std::printf("census:   200k wide mixed-type rows -> clean + derive + "
              "demographic aggregation\n");
  std::printf("plasticc: 300k light-curve points x 1.5k objects -> "
              "SNR filter + per-object stats\n");

  struct Workload {
    const char* name;
    std::function<Status(core::Session*)> body;
  };
  const Workload workloads[] = {
      {"uc10",
       [](core::Session* s) {
         return workloads::pipelines::TpcxAiUC10(s, 300000, 1000).status();
       }},
      {"census",
       [](core::Session* s) {
         return workloads::pipelines::Census(s, 200000, 44).status();
       }},
      {"plasticc",
       [](core::Session* s) {
         return workloads::pipelines::Plasticc(s, 300000, 1500, 45)
             .status();
       }},
  };

  std::map<std::string, std::map<EngineKind, double>> times;
  PrintHeader("Fig. 8(a): pipeline runtimes (modeled cluster seconds)");
  std::printf("%-10s %-10s %-10s %-10s %-12s %-8s %s\n", "workload",
              "engine", "sim_s", "wall_s", "transfer_MB", "yields",
              "status");
  for (const auto& w : workloads) {
    for (EngineKind kind : AllEngines()) {
      RunStats stats =
          TimedRun(BenchConfig(kind, 2, 2, /*band_mb=*/96, /*chunk_kb=*/1024,
                               /*deadline_ms=*/120000),
                   w.body);
      times[w.name][kind] = stats.sim_s;
      std::printf("%-10s %-10s %-10.3f %-10.3f %-12.1f %-8lld %s\n", w.name,
                  EngineKindName(kind), stats.sim_s, stats.wall_s,
                  stats.transfer_bytes / 1048576.0,
                  static_cast<long long>(stats.yields),
                  stats.status.ok() ? "ok" : stats.status.ToString().c_str());
    }
  }

  PrintHeader("Speedup of xorbits over each baseline (modeled time)");
  std::printf("%-10s", "workload");
  for (EngineKind k : AllEngines()) {
    if (k != EngineKind::kXorbits) std::printf(" vs_%-8s", EngineKindName(k));
  }
  std::printf("\n");
  for (const auto& w : workloads) {
    std::printf("%-10s", w.name);
    const double x = times[w.name][EngineKind::kXorbits];
    for (EngineKind k : AllEngines()) {
      if (k == EngineKind::kXorbits) continue;
      const double base = times[w.name][k];
      if (x > 0 && base > 0) {
        std::printf(" %-10.2fx", base / x);
      } else {
        std::printf(" %-11s", "n/a");
      }
    }
    std::printf("\n");
  }
  std::printf("(paper, uc10: 29x over dask, 37x over modin; census: 2.65x "
              "over modin; plasticc: 3.86x over pyspark)\n");
}

}  // namespace
}  // namespace xorbits::bench

int main(int argc, char** argv) {
  xorbits::bench::InitTrace(argc, argv);
  xorbits::bench::Run();
  xorbits::bench::FinishTrace();
  return 0;
}
