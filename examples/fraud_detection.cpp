// Fraud-detection ETL — the paper's flagship industrial scenario (§III-B):
// a tiny customer table joined against a large, heavily skewed transaction
// log, followed by per-customer risk features. This is exactly the workload
// where static partitioning collapses onto one worker (the paper's 29x/37x
// result) and dynamic tiling broadcasts the small side instead.
//
// The example runs the same pipeline under the Modin-like static engine and
// under Xorbits, and prints the modeled cluster time of each.

#include <cstdio>

#include "core/xorbits.h"
#include "workloads/pipelines.h"

using namespace xorbits;  // NOLINT

namespace {

double RunOnce(EngineKind kind) {
  Config config = Config::Preset(kind);
  config.num_workers = 2;
  config.bands_per_worker = 2;
  config.band_memory_limit = 128LL << 20;
  config.chunk_store_limit = 1LL << 20;
  core::Session session(std::move(config));
  auto features =
      workloads::pipelines::TpcxAiUC10(&session, /*num_transactions=*/300000,
                                       /*num_customers=*/1000);
  if (!features.ok()) {
    std::printf("[%s] failed: %s\n", EngineKindName(kind),
                features.status().ToString().c_str());
    return -1;
  }
  const double sim_s = session.metrics().simulated_us.load() / 1e6;
  std::printf("[%s] %lld customers scored, modeled cluster time %.3fs, "
              "dynamic yields %lld\n",
              EngineKindName(kind),
              static_cast<long long>(features->num_rows()), sim_s,
              static_cast<long long>(session.metrics().dynamic_yields.load()));
  if (kind == EngineKind::kXorbits) {
    std::printf("top of the feature table:\n%s\n",
                features->ToString(6).c_str());
  }
  return sim_s;
}

}  // namespace

int main() {
  std::printf("fraud-detection ETL over a skewed transaction log\n\n");
  const double station = RunOnce(EngineKind::kModinLike);
  const double dynamic = RunOnce(EngineKind::kXorbits);
  if (station > 0 && dynamic > 0) {
    std::printf("\ndynamic tiling speedup over static partitioning: %.2fx\n",
                station / dynamic);
  }
  return 0;
}
