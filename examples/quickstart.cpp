// Quickstart: the C++ analogue of the paper's Listing 2 — "scale your data
// science workload by changing the import line". Here the import line is a
// Session: create one, then use the pandas/NumPy-style lazy handles.
//
//   import xorbits.pandas as pd        ->  xorbits::ReadParquet / FromPandas
//   import xorbits.numpy as np         ->  xorbits::RandomNormal / FromNumpy
//   xorbits.init(...)                  ->  core::Session session(config);
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/xorbits.h"
#include "io/tpch_gen.h"
#include "io/xparquet.h"

using namespace xorbits;  // NOLINT

int main() {
  // xorbits.init(): start a local "cluster" — 2 workers x 2 NUMA bands.
  Config config;
  config.num_workers = 2;
  config.bands_per_worker = 2;
  config.band_memory_limit = 256LL << 20;
  config.chunk_store_limit = 4LL << 20;
  core::Session session(std::move(config));

  // --- array example (Listing 2): Q, R = np.linalg.qr(a) ---
  auto a = RandomNormal(&session, {20000, 64});
  auto qr = a->QR();
  if (!qr.ok()) {
    std::printf("qr failed: %s\n", qr.status().ToString().c_str());
    return 1;
  }
  auto r_factor = qr->second.Fetch();
  std::printf("QR of a 20000x64 random matrix, R factor:\n%s\n",
              r_factor->ToString(4).c_str());

  // --- dataframe example 1: read_parquet + groupby.agg ---
  // Generate a small TPC-H dataset to have a parquet-like file to read.
  const std::string dir = "/tmp/xorbits_quickstart";
  if (Status st = io::tpch::GenerateFiles(0.01, dir); !st.ok()) {
    std::printf("generate failed: %s\n", st.ToString().c_str());
    return 1;
  }
  auto orders = ReadParquet(&session, dir + "/orders.xpq");
  auto by_priority = orders->GroupByAgg(
      {"o_orderpriority"},
      {{"o_totalprice", dataframe::AggFunc::kMean, "avg_price"},
       {"", dataframe::AggFunc::kSize, "n_orders"}});
  // Deferred evaluation: printing is what triggers execution.
  std::printf("orders by priority:\n%s\n",
              by_priority->Repr().ValueOrDie().c_str());

  // --- dataframe example 2 (the paper's running example): filter + iloc ---
  auto lineitem = ReadParquet(&session, dir + "/lineitem.xpq");
  auto filtered = lineitem->Filter(operators::CompareExpr(
      operators::Col("l_quantity"), dataframe::CmpOp::kLt,
      operators::Lit(int64_t{10})));
  auto row = filtered->Iloc(10);  // needs dynamic tiling: sizes are unknown
  std::printf("10th row of the filtered lineitem:\n%s\n",
              row->Repr().ValueOrDie().c_str());

  std::printf("metrics: %s\n", session.metrics().ToString().c_str());
  return 0;
}
