// E-commerce user-behavior analysis — the paper's other production use case
// (§III-B): sessionized event logs, funnel filtering, per-user engagement
// features, and a join against a user-attribute table. Demonstrates the
// dataframe API end to end: filters, expressions, merges, groupbys, sorts,
// head, and deferred evaluation.

#include <cstdio>

#include "common/random.h"
#include "core/xorbits.h"

using namespace xorbits;            // NOLINT
using namespace xorbits::operators;  // NOLINT
using dataframe::AggFunc;
using dataframe::CmpOp;
using dataframe::Column;
using dataframe::DataFrame;

namespace {

DataFrame MakeEvents(int64_t n, int64_t num_users) {
  Rng rng(11);
  std::vector<int64_t> user(n), ts(n), dwell(n);
  std::vector<std::string> action(n);
  const char* kActions[] = {"view", "click", "cart", "purchase"};
  for (int64_t i = 0; i < n; ++i) {
    user[i] = rng.Zipf(num_users, 1.4);  // heavy users dominate, as in logs
    ts[i] = rng.UniformInt(0, 86400 * 30);
    dwell[i] = rng.UniformInt(1, 600);
    // Funnel: most events are views, few are purchases.
    const int64_t r = rng.UniformInt(0, 99);
    action[i] = kActions[r < 70 ? 0 : (r < 90 ? 1 : (r < 97 ? 2 : 3))];
  }
  return DataFrame::Make({"user_id", "ts", "dwell_s", "action"},
                         {Column::Int64(user), Column::Int64(ts),
                          Column::Int64(dwell), Column::String(action)})
      .MoveValue();
}

DataFrame MakeUsers(int64_t n) {
  Rng rng(12);
  std::vector<int64_t> id(n), age(n);
  std::vector<std::string> tier(n);
  const char* kTiers[] = {"free", "plus", "pro"};
  for (int64_t i = 0; i < n; ++i) {
    id[i] = i;
    age[i] = rng.UniformInt(18, 70);
    tier[i] = kTiers[rng.UniformInt(0, 2)];
  }
  return DataFrame::Make({"user_id", "age", "tier"},
                         {Column::Int64(id), Column::Int64(age),
                          Column::String(tier)})
      .MoveValue();
}

Status Run() {
  Config config;
  config.num_workers = 2;
  config.bands_per_worker = 2;
  config.chunk_store_limit = 1LL << 20;
  core::Session session(std::move(config));

  XORBITS_ASSIGN_OR_RETURN(DataFrameRef events,
                           FromPandas(&session, MakeEvents(400000, 5000)));
  XORBITS_ASSIGN_OR_RETURN(DataFrameRef users,
                           FromPandas(&session, MakeUsers(5000)));

  // Engagement: long-dwell events only.
  XORBITS_ASSIGN_OR_RETURN(
      DataFrameRef engaged,
      events.Filter(CompareExpr(Col("dwell_s"), CmpOp::kGe,
                                Lit(int64_t{30}))));
  // Per-user funnel features.
  XORBITS_ASSIGN_OR_RETURN(
      DataFrameRef purchases,
      engaged.Filter(CompareExpr(Col("action"), CmpOp::kEq,
                                 Lit("purchase"))));
  XORBITS_ASSIGN_OR_RETURN(
      DataFrameRef purchase_counts,
      purchases.GroupByAgg({"user_id"},
                           {{"", AggFunc::kSize, "purchases"}}));
  XORBITS_ASSIGN_OR_RETURN(
      DataFrameRef activity,
      engaged.GroupByAgg({"user_id"},
                         {{"dwell_s", AggFunc::kSum, "total_dwell"},
                          {"dwell_s", AggFunc::kMean, "avg_dwell"},
                          {"", AggFunc::kSize, "events"}}));
  dataframe::MergeOptions on_user;
  on_user.on = {"user_id"};
  on_user.how = dataframe::JoinType::kLeft;
  XORBITS_ASSIGN_OR_RETURN(DataFrameRef features,
                           activity.Merge(purchase_counts, on_user));
  dataframe::MergeOptions attrs = on_user;
  attrs.how = dataframe::JoinType::kInner;
  XORBITS_ASSIGN_OR_RETURN(features, features.Merge(users, attrs));
  // Conversion proxy and ranking.
  XORBITS_ASSIGN_OR_RETURN(
      features,
      features.Assign("dwell_per_event",
                      BinaryExpr(Col("total_dwell"), dataframe::BinOp::kDiv,
                                 Col("events"))));
  XORBITS_ASSIGN_OR_RETURN(DataFrameRef top,
                           features.SortValues({"total_dwell"}, {false}));
  XORBITS_ASSIGN_OR_RETURN(top, top.Head(10));

  XORBITS_ASSIGN_OR_RETURN(std::string repr, top.Repr(12));
  std::printf("top-10 most engaged users:\n%s\n", repr.c_str());

  // Tier-level summary.
  XORBITS_ASSIGN_OR_RETURN(
      DataFrameRef by_tier,
      features.GroupByAgg({"tier"},
                          {{"events", AggFunc::kSum, "events"},
                           {"purchases", AggFunc::kSum, "purchases"},
                           {"avg_dwell", AggFunc::kMean, "avg_dwell"}}));
  XORBITS_ASSIGN_OR_RETURN(repr, by_tier.Repr());
  std::printf("\nengagement by tier:\n%s\n", repr.c_str());
  std::printf("\nmetrics: %s\n", session.metrics().ToString().c_str());
  return Status::OK();
}

}  // namespace

int main() {
  Status st = Run();
  if (!st.ok()) {
    std::printf("failed: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
