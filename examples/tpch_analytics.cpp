// Ad-hoc analytics: runs a selection of the TPC-H queries (ported to the
// dataframe API exactly as the paper ports them to pandas) and prints their
// result tables — the decision-support scenario of §VI-B.

#include <cstdio>
#include <cstdlib>

#include "core/xorbits.h"
#include "io/tpch_gen.h"
#include "workloads/tpch_queries.h"

using namespace xorbits;  // NOLINT

int main(int argc, char** argv) {
  const double sf = argc > 1 ? std::atof(argv[1]) : 0.01;
  const std::string dir = "/tmp/xorbits_tpch_example";
  std::printf("generating TPC-H at SF %.3f into %s ...\n", sf, dir.c_str());
  if (Status st = io::tpch::GenerateFiles(sf, dir); !st.ok()) {
    std::printf("generate failed: %s\n", st.ToString().c_str());
    return 1;
  }

  Config config;
  config.num_workers = 2;
  config.bands_per_worker = 2;
  config.chunk_store_limit = 2LL << 20;

  // Pricing summary (Q1), shipping priority (Q3), revenue forecast (Q6),
  // market share (Q8) and customer distribution (Q13).
  for (int q : {1, 3, 6, 8, 13}) {
    core::Session session(config);
    auto result = workloads::tpch::RunQuery(q, &session, dir);
    if (!result.ok()) {
      std::printf("Q%d failed: %s\n", q, result.status().ToString().c_str());
      continue;
    }
    std::printf("\n--- Q%d (modeled cluster time %.3fs) ---\n%s\n", q,
                session.metrics().simulated_us.load() / 1e6,
                result->ToString(8).c_str());
  }
  return 0;
}
